package ledger

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// record one full synthetic negotiation against l and return its handle.
func oneNegotiation(l *Ledger) *Rec {
	r := l.Begin("hq", "SELECT * FROM t")
	r.RFBIssued("hq-rfb1", 1, 2)
	r.Bid(1, "corfu", "q0", "corfu/hq-rfb1/q0/o1", 10, 12)
	r.Bid(1, "myconos", "q0", "myconos/hq-rfb1/q0/o1", 8, 9)
	r.Round(1, 2, 2, 2, 3.5)
	l.Priced("hq-rfb1", "hq", "corfu", "q0", 1, false, 0.4)
	r.Award("myconos", "q0", "myconos/hq-rfb1/q0/o1", 8, 9)
	r.ExecStarted()
	r.Fetch("myconos", "myconos/hq-rfb1/q0/o1", "SELECT 1", 8, 16, 14, 5, 120, "")
	r.ExecFinished(20, 5, "")
	l.Served("hq-rfb1", "myconos", "myconos/hq-rfb1/q0/o1", "SELECT 1", 14, 5, 120)
	return r
}

func TestNegotiationChain(t *testing.T) {
	l := New(0)
	oneNegotiation(l)
	negs := l.Negotiations(0)
	if len(negs) != 1 {
		t.Fatalf("want 1 negotiation, got %d", len(negs))
	}
	n := negs[0]
	if n.ID != "hq-rfb1" || n.Buyer != "hq" || !n.Awarded {
		t.Fatalf("bad negotiation header: %+v", n)
	}
	wantKinds := []string{KindRFB, KindBid, KindBid, KindRound, KindPriced,
		KindAward, KindExecStart, KindFetch, KindExec, KindServed}
	if len(n.Events) != len(wantKinds) {
		t.Fatalf("want %d events, got %d: %+v", len(wantKinds), len(n.Events), n.Events)
	}
	var lastSeq int64
	for i, e := range n.Events {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d: want kind %s, got %s", i, wantKinds[i], e.Kind)
		}
		if e.Seq <= lastSeq {
			t.Errorf("event %d: seq not monotonic (%d after %d)", i, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
	}
	// The seller-side priced event must land in the buyer's record (shared
	// ledger) because RFBIssued indexed the RFBID.
	if n.Events[4].Seller != "corfu" || n.Events[4].Offers != 1 {
		t.Errorf("priced event misrecorded: %+v", n.Events[4])
	}
	if f := n.Events[7]; f.WallMS != 16 || f.SellerMS != 14 || f.Rows != 5 || f.Bytes != 120 {
		t.Errorf("fetch actuals misrecorded: %+v", f)
	}
}

func TestRingEviction(t *testing.T) {
	l := New(3)
	for i := 0; i < 5; i++ {
		r := l.Begin("hq", "q")
		r.RFBIssued("rfb"+string(rune('a'+i)), 1, 1)
	}
	if l.Len() != 3 {
		t.Fatalf("want ring of 3, got %d", l.Len())
	}
	negs := l.Negotiations(0)
	if negs[0].ID != "rfbc" || negs[2].ID != "rfbe" {
		t.Fatalf("wrong retention order: %s..%s", negs[0].ID, negs[2].ID)
	}
	// Evicted RFBIDs must not resurrect their records via seller events.
	l.Priced("rfba", "hq", "s", "q0", 1, false, 1)
	if l.Len() != 3 {
		t.Fatalf("evicted RFB resurrected the ring: %d", l.Len())
	}
	if got := l.Negotiations(0)[2].ID; got != "rfba" {
		t.Fatalf("priced event for evicted RFB should open a fresh record, newest is %s", got)
	}
	// Negotiations(n) limits to the newest n.
	if got := l.Negotiations(2); len(got) != 2 {
		t.Fatalf("Negotiations(2) returned %d", len(got))
	}
}

func TestSellerOnlyLedger(t *testing.T) {
	// A qtnode process has no buyer Rec: Priced/Served must open records
	// keyed by the remote buyer's RFBID.
	l := New(0)
	l.Priced("remote-rfb1", "hq", "corfu", "q0", 2, true, 0.2)
	l.Served("remote-rfb1", "corfu", "corfu/remote-rfb1/q0/o1", "SELECT 1", 3, 4, 99)
	negs := l.Negotiations(0)
	if len(negs) != 1 || negs[0].ID != "remote-rfb1" || negs[0].Buyer != "hq" {
		t.Fatalf("seller-only record wrong: %+v", negs)
	}
	if len(negs[0].Events) != 2 || !negs[0].Events[0].CacheHit {
		t.Fatalf("events wrong: %+v", negs[0].Events)
	}
}

func TestCalibrationReport(t *testing.T) {
	l := New(0)
	r := l.Begin("hq", "q")
	r.RFBIssued("rfb1", 1, 1)
	for i := 0; i < 4; i++ {
		r.Bid(1, "slow", "q0", "o", 10, 10)
		r.Bid(1, "good", "q0", "o", 10, 10)
	}
	r.Award("slow", "q0", "o", 10, 10)
	r.Award("good", "q0", "o", 10, 10)
	// "good" quotes perfectly; "slow" runs 4x its quote.
	r.Fetch("good", "o", "s", 10, 10, 9, 1, 10, "")
	r.Fetch("slow", "o", "s", 10, 40, 39, 1, 10, "")
	r.Fetch("slow", "o", "s", 10, 40, 39, 1, 10, "")
	rep := l.Calibration()
	if rep.Negotiations != 1 || len(rep.Sellers) != 2 {
		t.Fatalf("report shape: %+v", rep)
	}
	good, slow := rep.Sellers[0], rep.Sellers[1]
	if good.Seller != "good" || slow.Seller != "slow" {
		t.Fatalf("seller order: %s, %s", good.Seller, slow.Seller)
	}
	if good.Bids != 4 || good.Wins != 1 || good.WinRate != 0.25 || good.Execs != 1 {
		t.Errorf("good tallies: %+v", good)
	}
	if math.Abs(good.MeanRatio-1) > 1e-9 || math.Abs(good.EWMAErr) > 1e-9 {
		t.Errorf("good should be perfectly calibrated: %+v", good)
	}
	if math.Abs(slow.MeanRatio-4) > 1e-9 || slow.EWMAErr < 2.9 {
		t.Errorf("slow should show 4x ratio and large positive EWMA error: %+v", slow)
	}
	if slow.P95Ratio < 4 {
		t.Errorf("slow p95 ratio %v < 4", slow.P95Ratio)
	}
	// Phase breakdown: fetch observed 3 times, award 0 (never ObservePhase'd).
	var fetch *PhaseReport
	for i := range rep.Phases {
		if rep.Phases[i].Phase == "fetch" {
			fetch = &rep.Phases[i]
		}
		if rep.Phases[i].Phase == "award" {
			t.Errorf("empty phase rendered: %+v", rep.Phases[i])
		}
	}
	if fetch == nil || fetch.Count != 3 {
		t.Fatalf("fetch phase missing or wrong: %+v", rep.Phases)
	}
	if txt := rep.Text(); !strings.Contains(txt, "slow") || !strings.Contains(txt, "phase latency") {
		t.Errorf("Text rendering incomplete:\n%s", txt)
	}
}

func TestJSONLExport(t *testing.T) {
	l := New(0)
	oneNegotiation(l)
	var b strings.Builder
	if err := l.WriteJSONL(&b, 0); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	lines := 0
	for sc.Scan() {
		var neg Negotiation
		if err := json.Unmarshal(sc.Bytes(), &neg); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if neg.ID == "" || len(neg.Events) == 0 {
			t.Fatalf("empty negotiation on line %d", lines)
		}
		lines++
	}
	if lines != 1 {
		t.Fatalf("want 1 JSONL line, got %d", lines)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	l := New(0)

	// /ledger before any negotiation: 404.
	rw := httptest.NewRecorder()
	l.ServeHTTP(rw, httptest.NewRequest("GET", "/ledger", nil))
	if rw.Code != 404 {
		t.Fatalf("empty ledger should 404, got %d", rw.Code)
	}

	oneNegotiation(l)
	oneNegotiation(l)

	rw = httptest.NewRecorder()
	l.ServeHTTP(rw, httptest.NewRequest("GET", "/ledger", nil))
	if rw.Code != 200 {
		t.Fatalf("/ledger: %d", rw.Code)
	}
	if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/jsonl") {
		t.Errorf("/ledger content-type: %s", ct)
	}
	if n := strings.Count(rw.Body.String(), "\n"); n != 2 {
		t.Errorf("want 2 JSONL lines, got %d", n)
	}

	// ?n=1 limits to the newest negotiation.
	rw = httptest.NewRecorder()
	l.ServeHTTP(rw, httptest.NewRequest("GET", "/ledger?n=1", nil))
	if n := strings.Count(rw.Body.String(), "\n"); n != 1 {
		t.Errorf("?n=1: want 1 line, got %d", n)
	}

	// Bad n and non-GET are client errors.
	rw = httptest.NewRecorder()
	l.ServeHTTP(rw, httptest.NewRequest("GET", "/ledger?n=x", nil))
	if rw.Code != 400 {
		t.Errorf("bad n: %d", rw.Code)
	}
	rw = httptest.NewRecorder()
	l.ServeHTTP(rw, httptest.NewRequest("POST", "/ledger", nil))
	if rw.Code != 405 {
		t.Errorf("POST /ledger: %d", rw.Code)
	}

	// /calibration: JSON object with the sellers seen above.
	rw = httptest.NewRecorder()
	l.CalibrationHandler().ServeHTTP(rw, httptest.NewRequest("GET", "/calibration", nil))
	if rw.Code != 200 {
		t.Fatalf("/calibration: %d", rw.Code)
	}
	if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/calibration content-type: %s", ct)
	}
	var rep Report
	if err := json.Unmarshal(rw.Body.Bytes(), &rep); err != nil {
		t.Fatalf("/calibration not JSON: %v", err)
	}
	if len(rep.Sellers) != 2 || rep.Sellers[0].Seller != "corfu" {
		t.Errorf("calibration shape: %+v", rep)
	}
	rw = httptest.NewRecorder()
	l.CalibrationHandler().ServeHTTP(rw, httptest.NewRequest("POST", "/calibration", nil))
	if rw.Code != 405 {
		t.Errorf("POST /calibration: %d", rw.Code)
	}
}

// TestDisabledLedgerZeroAlloc pins the acceptance criterion that an unset
// ledger adds zero allocations on the negotiation hot path: every recording
// call on a nil Ledger / nil Rec must be a pure nil check.
func TestDisabledLedgerZeroAlloc(t *testing.T) {
	var l *Ledger
	allocs := testing.AllocsPerRun(100, func() {
		r := l.Begin("hq", "q")
		r.RFBIssued("rfb", 1, 1)
		r.Bid(1, "s", "q0", "o", 1, 1)
		r.Round(1, 1, 1, 1, 1)
		r.Award("s", "q0", "o", 1, 1)
		r.ExecStarted()
		r.Fetch("s", "o", "sql", 1, 1, 1, 1, 1, "")
		r.ExecFinished(1, 1, "")
		r.Recovery("a", "b", "o", "crash")
		r.ObservePhase(PhaseAward, 1)
		l.Priced("rfb", "hq", "s", "q0", 1, false, 1)
		l.Served("rfb", "s", "o", "sql", 1, 1, 1)
		l.ObservePhase(PhaseRewrite, 1)
		l.Anomaly("p95_regression", "buyer.hq.wall_ms", 2, 1, 0)
		if l.Len() != 0 {
			t.Fatal("nil ledger has length")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled ledger allocated %.1f objects per negotiation", allocs)
	}
}

func TestConcurrentRecording(t *testing.T) {
	l := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				oneNegotiation(l)
				_ = l.Calibration()
			}
		}()
	}
	wg.Wait()
	if l.Len() != 16 {
		t.Fatalf("ring should be full at 16, got %d", l.Len())
	}
	rep := l.Calibration()
	var total int64
	for _, s := range rep.Sellers {
		total += s.Execs
	}
	if total != 8*50 {
		t.Fatalf("calibration lost executions: %d", total)
	}
}

// Membership events: joins, drains, undrains and leaves are recorded in
// order into a bounded ring, nil-safely, and the JSONL export appends them
// as one synthetic "lifecycle" negotiation after the real ones.
func TestLifecycleEvents(t *testing.T) {
	var nilLedger *Ledger
	nilLedger.Lifecycle(KindJoin, "n1", "") // must not panic
	if nilLedger.LifecycleEvents() != nil {
		t.Fatal("nil ledger has no lifecycle events")
	}

	l := New(4)
	if l.LifecycleEvents() != nil {
		t.Fatal("fresh ledger has no lifecycle events")
	}
	oneNegotiation(l)
	l.Lifecycle(KindJoin, "n9", "")
	l.Lifecycle(KindDrain, "n4", "elastic scale-down")
	l.Lifecycle(KindUndrain, "n4", "")
	l.Lifecycle(KindLeave, "n4", "decommissioned")

	life := l.LifecycleEvents()
	wantKinds := []string{KindJoin, KindDrain, KindUndrain, KindLeave}
	if len(life) != len(wantKinds) {
		t.Fatalf("lifecycle events: %+v", life)
	}
	var lastSeq int64
	for i, e := range life {
		if e.Kind != wantKinds[i] {
			t.Fatalf("event %d kind %s, want %s", i, e.Kind, wantKinds[i])
		}
		if e.At.IsZero() || e.Seq <= lastSeq {
			t.Fatalf("event %d missing timestamp or ordering: %+v", i, e)
		}
		lastSeq = e.Seq
	}
	if life[1].Seller != "n4" || life[1].Reason != "elastic scale-down" {
		t.Fatalf("drain context lost: %+v", life[1])
	}

	// The ring shares the negotiation capacity: a 5th event evicts the oldest.
	l.Lifecycle(KindJoin, "n10", "")
	life = l.LifecycleEvents()
	if len(life) != 4 || life[0].Kind != KindDrain {
		t.Fatalf("lifecycle ring must evict oldest-first: %+v", life)
	}

	var buf strings.Builder
	if err := l.WriteJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want negotiation + lifecycle lines, got %d:\n%s", len(lines), buf.String())
	}
	var last Negotiation
	if err := json.Unmarshal([]byte(lines[1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.ID != "lifecycle" || len(last.Events) != 4 {
		t.Fatalf("lifecycle export line: %+v", last)
	}
}

// Recovery events carry the substitution triple plus the failure class, and
// every recording entry point is nil-safe.
func TestRecoveryEventAndNilRec(t *testing.T) {
	var r *Rec
	r.Recovery("corfu", "myconos", "o1", "crash") // must not panic
	r.ObservePhase(PhaseFetch, 1)

	l := New(0)
	rec := oneNegotiation(l)
	rec.Recovery("corfu", "myconos", "o1", "drain")
	negs := l.Negotiations(0)
	var got *Event
	for i, e := range negs[0].Events {
		if e.Kind == KindRecovery {
			got = &negs[0].Events[i]
		}
	}
	if got == nil {
		t.Fatal("no recovery event recorded")
	}
	if got.Err != "corfu" || got.Seller != "myconos" || got.OfferID != "o1" || got.Reason != "drain" {
		t.Fatalf("recovery event: %+v", got)
	}
}
