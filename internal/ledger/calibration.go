package ledger

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"qtrade/internal/obs"
)

// Phase indexes the per-phase latency breakdown: where one negotiation's
// wall time goes, from query rewriting through answer fetch.
type Phase int

const (
	PhaseRewrite Phase = iota // seller: rewrite RFB query over local views
	PhasePricing              // seller: DP cost model pass over one query
	PhaseRounds               // buyer: one trading-protocol collection
	PhaseAward                // buyer: B8 award round-trips
	PhaseExecute              // buyer: winning plan execution end-to-end
	PhaseFetch                // buyer: one purchased answer delivery
	numPhases
)

var phaseNames = [numPhases]string{"rewrite", "pricing", "rounds", "award", "execute", "fetch"}

// String returns the phase's report name ("rewrite", "pricing", ...).
func (p Phase) String() string {
	if p < 0 || p >= numPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// ratioBounds are the quoted-vs-actual ratio histogram's bucket upper
// bounds; the last bucket is open (+Inf). A perfectly calibrated seller
// lands everything in the (0.8, 1.25] band around 1.0; chronic
// underquoting (actual ≫ quoted) piles into the right tail.
var ratioBounds = [...]float64{0.25, 0.5, 0.8, 1.25, 2, 4, 8, 16}

const ratioBuckets = len(ratioBounds) + 1

// ewmaAlpha weights the exponentially-weighted moving average of each
// seller's relative quote error; 0.2 ≈ a window of the last ~10 executions.
const ewmaAlpha = 0.2

// sellerCal accumulates one seller's calibration state.
type sellerCal struct {
	bids, wins, execs int64
	ratioSum          float64 // sum of actual/quoted over executions
	ratioMin          float64
	ratioMax          float64
	hist              [ratioBuckets]int64
	ewmaErr           float64 // EWMA of (actual-quoted)/quoted, signed
	ewmaSet           bool
}

// calibrator aggregates quote accuracy per seller plus the global per-phase
// latency histograms. Unlike the negotiation ring it is unbounded: it keeps
// one entry per seller for the lifetime of the ledger.
type calibrator struct {
	mu      sync.Mutex
	sellers map[string]*sellerCal
	phases  [numPhases]obs.Histogram
}

func (c *calibrator) init() { c.sellers = map[string]*sellerCal{} }

func (c *calibrator) seller(id string) *sellerCal {
	s, ok := c.sellers[id]
	if !ok {
		s = &sellerCal{}
		c.sellers[id] = s
	}
	return s
}

func (c *calibrator) bid(seller string) {
	c.mu.Lock()
	c.seller(seller).bids++
	c.mu.Unlock()
}

func (c *calibrator) win(seller string) {
	c.mu.Lock()
	c.seller(seller).wins++
	c.mu.Unlock()
}

// observe folds one measured execution into the seller's ratio histogram
// and EWMA error. quoted must be > 0 (caller checks).
func (c *calibrator) observe(seller string, quotedMS, actualMS float64) {
	ratio := actualMS / quotedMS
	i := 0
	for i < len(ratioBounds) && ratio > ratioBounds[i] {
		i++
	}
	c.mu.Lock()
	s := c.seller(seller)
	s.execs++
	s.ratioSum += ratio
	if s.execs == 1 || ratio < s.ratioMin {
		s.ratioMin = ratio
	}
	if ratio > s.ratioMax {
		s.ratioMax = ratio
	}
	s.hist[i]++
	relErr := ratio - 1
	if !s.ewmaSet {
		s.ewmaErr, s.ewmaSet = relErr, true
	} else {
		s.ewmaErr = ewmaAlpha*relErr + (1-ewmaAlpha)*s.ewmaErr
	}
	c.mu.Unlock()
}

func (c *calibrator) phase(p Phase, ms float64) {
	if p < 0 || p >= numPhases {
		return
	}
	c.phases[p].Observe(ms)
}

// RatioBucket is one bucket of a seller's quoted-vs-actual distribution.
// LE is the bucket's upper bound rendered as text ("+Inf" on the last
// bucket) because JSON has no infinity literal.
type RatioBucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// SellerReport is one seller's calibration summary. Ratio fields are
// actual/quoted: 1.0 is a perfect quote, above 1 the seller underquoted
// (ran slower than promised), below 1 it overquoted.
type SellerReport struct {
	Seller    string        `json:"seller"`
	Bids      int64         `json:"bids"`
	Wins      int64         `json:"wins"`
	WinRate   float64       `json:"win_rate"`
	Execs     int64         `json:"execs"`
	MeanRatio float64       `json:"mean_ratio,omitempty"`
	P50Ratio  float64       `json:"p50_ratio,omitempty"`
	P95Ratio  float64       `json:"p95_ratio,omitempty"`
	MinRatio  float64       `json:"min_ratio,omitempty"`
	MaxRatio  float64       `json:"max_ratio,omitempty"`
	EWMAErr   float64       `json:"ewma_err"` // signed relative error, EWMA
	RatioHist []RatioBucket `json:"ratio_hist,omitempty"`
}

// PhaseReport summarizes one phase's latency distribution in milliseconds.
type PhaseReport struct {
	Phase  string  `json:"phase"`
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Report is the ledger's calibration roll-up: how well each seller's quotes
// track measured reality, and where negotiation wall time goes by phase.
type Report struct {
	Negotiations int            `json:"negotiations"` // retained in the ring
	Sellers      []SellerReport `json:"sellers"`
	Phases       []PhaseReport  `json:"phases"`
}

// quantile approximates the q-quantile of a bucketed ratio distribution as
// the containing bucket's upper bound, clamped to the observed max.
func (s *sellerCal) quantile(q float64) float64 {
	if s.execs == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.execs)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range s.hist {
		seen += n
		if seen >= rank {
			if i < len(ratioBounds) {
				return math.Min(ratioBounds[i], s.ratioMax)
			}
			return s.ratioMax
		}
	}
	return s.ratioMax
}

// Calibration builds the current calibration report. Sellers sort by name;
// phases appear in pipeline order, empty phases omitted. Safe to call while
// negotiations are in flight.
func (l *Ledger) Calibration() Report {
	if l == nil {
		return Report{}
	}
	rep := Report{Negotiations: l.Len()}
	c := &l.cal
	c.mu.Lock()
	names := make([]string, 0, len(c.sellers))
	for n := range c.sellers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := c.sellers[n]
		sr := SellerReport{Seller: n, Bids: s.bids, Wins: s.wins, Execs: s.execs, EWMAErr: s.ewmaErr}
		if s.bids > 0 {
			sr.WinRate = float64(s.wins) / float64(s.bids)
		}
		if s.execs > 0 {
			sr.MeanRatio = s.ratioSum / float64(s.execs)
			sr.P50Ratio = s.quantile(0.50)
			sr.P95Ratio = s.quantile(0.95)
			sr.MinRatio = s.ratioMin
			sr.MaxRatio = s.ratioMax
			for i, cnt := range s.hist {
				le := "+Inf"
				if i < len(ratioBounds) {
					le = strconv.FormatFloat(ratioBounds[i], 'g', -1, 64)
				}
				sr.RatioHist = append(sr.RatioHist, RatioBucket{LE: le, Count: cnt})
			}
		}
		rep.Sellers = append(rep.Sellers, sr)
	}
	c.mu.Unlock()
	for p := Phase(0); p < numPhases; p++ {
		h := &c.phases[p]
		if h.Count() == 0 {
			continue
		}
		rep.Phases = append(rep.Phases, PhaseReport{
			Phase: p.String(), Count: h.Count(), MeanMS: h.Mean(),
			P50MS: h.Quantile(0.50), P95MS: h.Quantile(0.95), MaxMS: h.Max(),
		})
	}
	return rep
}

// Text renders the report as aligned tables for terminal display (qtsql
// \calibration, qtbench -ledger).
func (r Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "negotiations retained: %d\n", r.Negotiations)
	if len(r.Sellers) > 0 {
		b.WriteString("\nseller calibration (ratio = measured/quoted; >1 underquoted):\n")
		fmt.Fprintf(&b, "  %-10s %6s %6s %8s %6s %10s %10s %10s %9s\n",
			"seller", "bids", "wins", "win_rate", "execs", "mean_ratio", "p50_ratio", "p95_ratio", "ewma_err")
		for _, s := range r.Sellers {
			fmt.Fprintf(&b, "  %-10s %6d %6d %8.2f %6d %10.2f %10.2f %10.2f %+8.0f%%\n",
				s.Seller, s.Bids, s.Wins, s.WinRate, s.Execs,
				s.MeanRatio, s.P50Ratio, s.P95Ratio, 100*s.EWMAErr)
		}
	}
	if len(r.Phases) > 0 {
		b.WriteString("\nphase latency (ms):\n")
		fmt.Fprintf(&b, "  %-8s %7s %9s %9s %9s %9s\n",
			"phase", "count", "mean", "p50", "p95", "max")
		for _, p := range r.Phases {
			fmt.Fprintf(&b, "  %-8s %7d %9.3f %9.3f %9.3f %9.3f\n",
				p.Phase, p.Count, p.MeanMS, p.P50MS, p.P95MS, p.MaxMS)
		}
	}
	return b.String()
}
