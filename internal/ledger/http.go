package ledger

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// ServeHTTP serves the retained negotiations as JSONL (one negotiation per
// line, oldest first) — the /ledger endpoint. ?n=k limits the response to
// the last k negotiations. GET only; 404 while the ring is empty so probes
// can tell "ledger on, nothing traded yet" from an active ledger.
func (l *Ledger) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	n := 0
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	if l.Len() == 0 {
		http.Error(w, "no negotiations recorded yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	_ = l.WriteJSONL(w, n)
}

// CalibrationHandler returns the /calibration endpoint: the current
// calibration report as one JSON object. GET only.
func (l *Ledger) CalibrationHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(l.Calibration())
	})
}
