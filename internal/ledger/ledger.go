// Package ledger is the trading ledger: a bounded in-memory record of every
// negotiation's economic life — RFB issued, bids received (with the seller's
// quoted cost, asking price and price-cache provenance), round outcomes,
// awards, execution with measured actuals, and recovery substitutions. The
// span tracer (internal/obs) answers "where did the time go"; the ledger
// answers "did the money match": it ties each seller's quoted cost to the
// wall time the buyer actually measured fetching the purchased answer, which
// is the signal load-aware pricing and seller-trust heuristics need.
//
// Everything is nil-safe: a nil *Ledger hands out nil *Rec handles and every
// recording method on either is a no-op, so disabled instrumentation
// compiles down to a nil check and adds zero allocations on the negotiation
// hot path (pinned by TestDisabledLedgerZeroAlloc).
package ledger

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event kinds, in the order they typically appear in one negotiation.
const (
	KindRFB       = "rfb"        // buyer issued an RFB (one per iteration)
	KindBid       = "bid"        // buyer received one offer
	KindRound     = "round"      // one trading-protocol collection finished
	KindAward     = "award"      // buyer purchased an offer (B8)
	KindExecStart = "exec_start" // buyer began executing the winning plan
	KindExec      = "exec"       // buyer finished executing (measured actuals)
	KindFetch     = "fetch"      // buyer fetched one purchased answer
	KindRecovery  = "recovery"   // delivery failure patched by a standing offer
	KindPriced    = "priced"     // seller priced one RFB query (cost model, no execution)
	KindServed    = "served"     // seller executed a purchased answer
	KindJoin      = "join"       // a node joined the federation
	KindDrain     = "drain"      // a node began draining (no new RFBs)
	KindUndrain   = "undrain"    // a drain was cancelled
	KindLeave     = "leave"      // a node left the federation
	KindAnomaly   = "anomaly"    // watchdog flagged a metrics window
)

// Event is one entry in a negotiation's stream. Fields are populated per
// kind; zero-valued fields are omitted from the JSONL export.
type Event struct {
	Seq      int64     `json:"seq"`
	Kind     string    `json:"kind"`
	At       time.Time `json:"at"`
	Iter     int       `json:"iter,omitempty"`   // buyer iteration (1-based)
	Rounds   int       `json:"rounds,omitempty"` // protocol rounds in a collection
	Seller   string    `json:"seller,omitempty"`
	QID      string    `json:"qid,omitempty"`
	OfferID  string    `json:"offer,omitempty"`
	SQL      string    `json:"sql,omitempty"`
	QuotedMS float64   `json:"quoted_ms,omitempty"` // seller's estimated total cost
	Price    float64   `json:"price,omitempty"`     // seller's asking price
	CacheHit bool      `json:"cache_hit,omitempty"` // priced from the seller's price cache
	WallMS   float64   `json:"wall_ms,omitempty"`   // measured wall time
	SellerMS float64   `json:"seller_ms,omitempty"` // seller-measured execution time
	Rows     int64     `json:"rows,omitempty"`
	Bytes    int64     `json:"bytes,omitempty"`
	Offers   int       `json:"offers,omitempty"` // offers in a bid/round/pricing batch
	Pool     int       `json:"pool,omitempty"`   // buyer pool size after the round
	Queries  int       `json:"queries,omitempty"`
	Err      string    `json:"err,omitempty"`
	Reason   string    `json:"reason,omitempty"` // failure class on recovery events (crash/drain/timeout/…), anomaly type on watchdog events
	Window   int64     `json:"window,omitempty"` // metrics-history window seq on anomaly events
}

// Negotiation is one RFB sequence's full event chain, exported as a single
// JSON object per negotiation.
type Negotiation struct {
	ID      string    `json:"id"` // first RFBID, or the buyer-seq handle
	Buyer   string    `json:"buyer"`
	SQL     string    `json:"sql,omitempty"`
	Start   time.Time `json:"start"`
	Awarded bool      `json:"awarded"`
	Events  []Event   `json:"events"`
}

// Rec is the buyer-side handle for one negotiation. A nil Rec (from a nil
// or unset Ledger) is valid; every method is a no-op.
type Rec struct {
	l  *Ledger
	mu sync.Mutex
	n  Negotiation
}

// Ledger is a bounded ring of negotiations plus the calibration aggregates
// built from their events. Safe for concurrent use by many buyers and
// sellers.
type Ledger struct {
	mu    sync.Mutex
	cap   int
	seq   int64
	negs  []*Rec          // ring, oldest first
	byRFB map[string]*Rec // every RFBID seen → owning record
	life  []Event         // membership events (join/drain/undrain/leave), oldest first
	anoms []Event         // watchdog anomaly events, oldest first
	cal   calibrator
}

// DefaultCapacity is the ring size used when New is given cap <= 0.
const DefaultCapacity = 128

// New returns a ledger retaining the last capacity negotiations
// (DefaultCapacity when capacity <= 0). Calibration aggregates are not
// bounded by the ring: they accumulate over every negotiation ever seen.
func New(capacity int) *Ledger {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	l := &Ledger{cap: capacity, byRFB: map[string]*Rec{}}
	l.cal.init()
	return l
}

func (l *Ledger) nextSeq() int64 {
	// Callers hold either l.mu or the owning Rec's mutex; take l.mu only
	// for the counter so Rec appends don't serialize on the ledger lock.
	l.mu.Lock()
	l.seq++
	s := l.seq
	l.mu.Unlock()
	return s
}

// insertLocked adds r to the ring, evicting the oldest negotiation (and its
// RFB index entries) once past capacity. Caller holds l.mu.
func (l *Ledger) insertLocked(r *Rec) {
	l.negs = append(l.negs, r)
	if len(l.negs) > l.cap {
		old := l.negs[0]
		l.negs = l.negs[1:]
		for id, rec := range l.byRFB {
			if rec == old {
				delete(l.byRFB, id)
			}
		}
	}
}

// Begin opens a negotiation record for one buyer optimization. Nil-safe:
// a nil ledger returns a nil Rec whose methods are all no-ops.
func (l *Ledger) Begin(buyer, sql string) *Rec {
	if l == nil {
		return nil
	}
	r := &Rec{l: l}
	r.n = Negotiation{Buyer: buyer, SQL: sql, Start: time.Now()}
	l.mu.Lock()
	l.insertLocked(r)
	l.mu.Unlock()
	return r
}

func (r *Rec) append(e Event) {
	e.Seq = r.l.nextSeq()
	e.At = time.Now()
	r.mu.Lock()
	r.n.Events = append(r.n.Events, e)
	r.mu.Unlock()
}

// RFBIssued records one iteration's RFB and indexes the RFBID so seller
// events for it land in this record. The first RFBID names the negotiation.
func (r *Rec) RFBIssued(rfbID string, iter, queries int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.n.ID == "" {
		r.n.ID = rfbID
	}
	r.mu.Unlock()
	r.l.mu.Lock()
	r.l.byRFB[rfbID] = r
	r.l.mu.Unlock()
	r.append(Event{Kind: KindRFB, Iter: iter, Queries: queries})
}

// Bid records one received offer and counts it toward the seller's
// calibration bid tally.
func (r *Rec) Bid(iter int, seller, qid, offerID string, quotedMS, price float64) {
	if r == nil {
		return
	}
	r.append(Event{Kind: KindBid, Iter: iter, Seller: seller, QID: qid,
		OfferID: offerID, QuotedMS: quotedMS, Price: price})
	r.l.cal.bid(seller)
}

// Round records the outcome of one trading-protocol collection: how many
// protocol rounds ran, how many offers came back, the pool size after
// dedup, and the collection's wall time (observed into PhaseRounds).
func (r *Rec) Round(iter, rounds, offers, pool int, wallMS float64) {
	if r == nil {
		return
	}
	r.append(Event{Kind: KindRound, Iter: iter, Rounds: rounds,
		Offers: offers, Pool: pool, WallMS: wallMS})
	r.l.cal.phase(PhaseRounds, wallMS)
}

// Award records one B8 purchase and counts the seller's win.
func (r *Rec) Award(seller, qid, offerID string, quotedMS, price float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.n.Awarded = true
	r.mu.Unlock()
	r.append(Event{Kind: KindAward, Seller: seller, QID: qid,
		OfferID: offerID, QuotedMS: quotedMS, Price: price})
	r.l.cal.win(seller)
}

// ExecStarted marks the beginning of winning-plan execution.
func (r *Rec) ExecStarted() {
	if r == nil {
		return
	}
	r.append(Event{Kind: KindExecStart})
}

// ExecFinished records the measured end-to-end execution: wall time, rows
// delivered to the buyer, and the error if it failed.
func (r *Rec) ExecFinished(wallMS float64, rows int64, errStr string) {
	if r == nil {
		return
	}
	r.append(Event{Kind: KindExec, WallMS: wallMS, Rows: rows, Err: errStr})
	r.l.cal.phase(PhaseExecute, wallMS)
}

// Fetch records one purchased answer's delivery with the buyer-measured
// wall time (network included), the seller's own measured execution time
// from ExecResp, and the payload size. A successful fetch with a positive
// quote feeds the seller's quoted-vs-actual calibration.
func (r *Rec) Fetch(seller, offerID, sql string, quotedMS, wallMS, sellerMS float64, rows, bytes int64, errStr string) {
	if r == nil {
		return
	}
	r.append(Event{Kind: KindFetch, Seller: seller, OfferID: offerID, SQL: sql,
		QuotedMS: quotedMS, WallMS: wallMS, SellerMS: sellerMS,
		Rows: rows, Bytes: bytes, Err: errStr})
	r.l.cal.phase(PhaseFetch, wallMS)
	if errStr == "" && quotedMS > 0 {
		r.l.cal.observe(seller, quotedMS, wallMS)
	}
}

// Recovery records a delivery failure patched in place: the failed seller's
// purchase replaced by an equivalent standing offer from another seller.
// reason classifies why the original seller failed ("crash", "drain",
// "timeout", "breaker", "error", or "" when unknown).
func (r *Rec) Recovery(failedSeller, subSeller, offerID, reason string) {
	if r == nil {
		return
	}
	r.append(Event{Kind: KindRecovery, Seller: subSeller, Err: failedSeller,
		OfferID: offerID, Reason: reason})
}

// ObservePhase feeds one buyer-side phase latency sample (award loop,
// plangen, …) into the calibration breakdown without adding an event.
func (r *Rec) ObservePhase(p Phase, ms float64) {
	if r == nil {
		return
	}
	r.l.cal.phase(p, ms)
}

// Snapshot returns a deep copy of the negotiation recorded so far — the
// flight recorder folds it into a query dossier at execution end without
// holding any ledger locks afterwards. Nil-safe (empty Negotiation).
func (r *Rec) Snapshot() Negotiation {
	if r == nil {
		return Negotiation{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	neg := r.n
	neg.Events = append([]Event(nil), r.n.Events...)
	return neg
}

// recFor finds the record owning rfbID, opening a seller-local one when the
// RFB was issued by a remote buyer whose ledger this process cannot see.
func (l *Ledger) recFor(rfbID, buyer string) *Rec {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r, ok := l.byRFB[rfbID]; ok {
		return r
	}
	r := &Rec{l: l}
	r.n = Negotiation{ID: rfbID, Buyer: buyer, Start: time.Now()}
	l.insertLocked(r)
	l.byRFB[rfbID] = r
	return r
}

// Priced records the seller side of one RFB query: how many offers the
// cost model produced, whether the valuation came from the price cache,
// and the pricing wall time (observed into PhasePricing).
func (l *Ledger) Priced(rfbID, buyer, seller, qid string, offers int, cacheHit bool, wallMS float64) {
	if l == nil {
		return
	}
	r := l.recFor(rfbID, buyer)
	r.append(Event{Kind: KindPriced, Seller: seller, QID: qid,
		Offers: offers, CacheHit: cacheHit, WallMS: wallMS})
	l.cal.phase(PhasePricing, wallMS)
}

// Served records the seller side of one purchased answer's execution.
func (l *Ledger) Served(rfbID, seller, offerID, sql string, wallMS float64, rows, bytes int64) {
	if l == nil {
		return
	}
	if rfbID == "" {
		rfbID = "-"
	}
	r := l.recFor(rfbID, "")
	r.append(Event{Kind: KindServed, Seller: seller, OfferID: offerID,
		SQL: sql, WallMS: wallMS, Rows: rows, Bytes: bytes})
}

// ObservePhase feeds one phase latency sample directly (seller-side rewrite
// and pricing, where no Rec handle exists).
func (l *Ledger) ObservePhase(p Phase, ms float64) {
	if l == nil {
		return
	}
	l.cal.phase(p, ms)
}

// Lifecycle records a federation membership event (join, drain, undrain,
// leave) for the named node, outside any negotiation. reason carries
// operator context ("sigterm", "operator", …) and may be empty. The stream
// is bounded by the same capacity as the negotiation ring. Nil-safe.
func (l *Ledger) Lifecycle(kind, node, reason string) {
	if l == nil {
		return
	}
	e := Event{Kind: kind, Seller: node, Reason: reason, At: time.Now()}
	e.Seq = l.nextSeq()
	l.mu.Lock()
	l.life = append(l.life, e)
	if len(l.life) > l.cap {
		l.life = l.life[1:]
	}
	l.mu.Unlock()
}

// Anomaly records one watchdog finding, outside any negotiation: reason
// names the anomaly type ("p95_regression", "recovery_spike",
// "pricecache_hitrate_drop", "calibration_drift"), metric the instrument
// that tripped it, value/baseline the compared magnitudes, and windowSeq the
// metrics-history window that was judged. Bounded by the ring capacity.
// Nil-safe.
func (l *Ledger) Anomaly(reason, metric string, value, baseline float64, windowSeq int64) {
	if l == nil {
		return
	}
	e := Event{Kind: KindAnomaly, Reason: reason, QID: metric,
		WallMS: value, QuotedMS: baseline, Window: windowSeq, At: time.Now()}
	e.Seq = l.nextSeq()
	l.mu.Lock()
	l.anoms = append(l.anoms, e)
	if len(l.anoms) > l.cap {
		l.anoms = l.anoms[1:]
	}
	l.mu.Unlock()
}

// Anomalies returns copies of the retained watchdog events, oldest first.
// Nil-safe.
func (l *Ledger) Anomalies() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.anoms...)
}

// LifecycleEvents returns copies of the retained membership events, oldest
// first. Nil-safe.
func (l *Ledger) LifecycleEvents() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.life...)
}

// Len reports how many negotiations the ring currently retains.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.negs)
}

// Negotiations returns copies of the last n retained negotiations, oldest
// first (all of them when n <= 0). Events within each negotiation are
// ordered as recorded; Seq is globally monotonic across negotiations.
func (l *Ledger) Negotiations(n int) []Negotiation {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	recs := append([]*Rec(nil), l.negs...)
	l.mu.Unlock()
	if n > 0 && n < len(recs) {
		recs = recs[len(recs)-n:]
	}
	out := make([]Negotiation, 0, len(recs))
	for _, r := range recs {
		r.mu.Lock()
		neg := r.n
		neg.Events = append([]Event(nil), r.n.Events...)
		r.mu.Unlock()
		out = append(out, neg)
	}
	return out
}

// WriteJSONL exports the last n retained negotiations (all when n <= 0) as
// one JSON object per line, oldest first, followed — when any membership
// events were recorded — by one synthetic "lifecycle" object carrying the
// join/drain/undrain/leave stream.
func (l *Ledger) WriteJSONL(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	for _, neg := range l.Negotiations(n) {
		if err := enc.Encode(neg); err != nil {
			return err
		}
	}
	if life := l.LifecycleEvents(); len(life) > 0 {
		if err := enc.Encode(Negotiation{ID: "lifecycle", Events: life}); err != nil {
			return err
		}
	}
	if anoms := l.Anomalies(); len(anoms) > 0 {
		return enc.Encode(Negotiation{ID: "anomalies", Events: anoms})
	}
	return nil
}
