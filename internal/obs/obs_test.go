package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeShape(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("buyer", "optimize")
	root.Set("sql", "SELECT 1")
	it1 := root.Child("iteration 1")
	neg := it1.Child("negotiate")
	neg.ChildOn("s1", "seller s1").End()
	neg.ChildOn("s2", "seller s2").End()
	neg.End()
	it1.Child("plangen").End()
	it1.End()
	it2 := root.Child("iteration 2")
	it2.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	r := roots[0]
	if r.Name() != "optimize" || r.Source() != "buyer" {
		t.Fatalf("root = %q @%q", r.Name(), r.Source())
	}
	kids := r.Children()
	if len(kids) != 2 || kids[0].Name() != "iteration 1" || kids[1].Name() != "iteration 2" {
		t.Fatalf("children = %v", names(kids))
	}
	negKids := kids[0].Children()[0].Children()
	if len(negKids) != 2 || negKids[0].Source() != "s1" || negKids[1].Source() != "s2" {
		t.Fatalf("seller spans = %v", names(negKids))
	}
	if got := r.Attrs(); len(got) != 1 || got[0].Key != "sql" || got[0].Val != "SELECT 1" {
		t.Fatalf("attrs = %v", got)
	}
	if r.Duration() <= 0 {
		t.Fatalf("duration = %v", r.Duration())
	}
}

func names(spans []*Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name()
	}
	return out
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x", "y")
	if s != nil {
		t.Fatal("nil tracer must produce nil span")
	}
	c := s.Child("z")
	c.Set("k", 1)
	c.End()
	s.End()
	if s.Duration() != 0 || s.Name() != "" || len(s.Children()) != 0 {
		t.Fatal("nil span accessors must be zero-valued")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-tracer chrome export is not valid JSON: %v", err)
	}

	var m *Metrics
	m.Counter("a").Inc()
	m.Gauge("b").Set(1)
	m.Histogram("c").Observe(1)
	if m.Snapshot() != "" {
		t.Fatal("nil metrics snapshot must be empty")
	}
}

// TestDisabledPathAllocs pins the zero-overhead guarantee: every operation
// on the disabled (nil) path must be allocation-free.
func TestDisabledPathAllocs(t *testing.T) {
	var tr *Tracer
	var m *Metrics
	cnt := m.Counter("x")
	h := m.Histogram("y")
	g := m.Gauge("z")
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Start("src", "op")
		c := s.Child("child")
		c.Set("k", "v")
		c.End()
		s.End()
		cnt.Inc()
		g.Set(3)
		h.Observe(1.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v per op, want 0", allocs)
	}
}

func TestChromeTraceValidity(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("buyer", "optimize")
	root.Set("sql", "SELECT 1")
	it := root.Child("iteration 1")
	it.ChildOn("seller-a", "pricing").End()
	it.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Dur  int64             `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var complete, meta int
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Dur <= 0 {
				t.Fatalf("complete event %q has dur %d", ev.Name, ev.Dur)
			}
			tids[ev.TID] = true
		case "M":
			meta++
			if ev.Name != "thread_name" || ev.Args["name"] == "" {
				t.Fatalf("bad metadata event: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 3 {
		t.Fatalf("complete events = %d, want 3", complete)
	}
	if len(tids) != 2 || meta != 2 {
		t.Fatalf("tracks = %d (meta %d), want 2 sources", len(tids), meta)
	}
}

func TestJSONLExport(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("buyer", "optimize")
	root.Child("iteration 1").End()
	root.End()
	tr.Start("buyer", "execute").End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	var recs []jsonlSpan
	for _, l := range lines {
		var r jsonlSpan
		if err := json.Unmarshal([]byte(l), &r); err != nil {
			t.Fatalf("line %q: %v", l, err)
		}
		recs = append(recs, r)
	}
	if recs[0].Path != "optimize" || recs[1].Path != "optimize/iteration 1" {
		t.Fatalf("paths = %q, %q", recs[0].Path, recs[1].Path)
	}
	if recs[2].Trace != 1 {
		t.Fatalf("second root trace index = %d, want 1", recs[2].Trace)
	}
}

func TestRenderText(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("buyer", "optimize")
	root.Set("pool", 7)
	root.Child("plangen").End()
	root.End()
	out := tr.RenderText()
	if !strings.Contains(out, "optimize @buyer") || !strings.Contains(out, "pool=7") {
		t.Fatalf("render = %q", out)
	}
	if !strings.Contains(out, "\n  plangen") {
		t.Fatalf("child not indented: %q", out)
	}
}

func TestMetricsBasics(t *testing.T) {
	m := NewMetrics()
	m.Counter("rfbs").Add(3)
	m.Counter("rfbs").Inc()
	if got := m.Counter("rfbs").Value(); got != 4 {
		t.Fatalf("counter = %d", got)
	}
	m.Gauge("pool").Set(11)
	if got := m.Gauge("pool").Value(); got != 11 {
		t.Fatalf("gauge = %g", got)
	}
	h := m.Histogram("dp_ms")
	for _, v := range []float64{0.5, 1, 2, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 107.5 {
		t.Fatalf("hist count=%d sum=%g", h.Count(), h.Sum())
	}
	if h.Min() != 0.5 || h.Max() != 100 {
		t.Fatalf("min=%g max=%g", h.Min(), h.Max())
	}
	if p50 := h.Quantile(0.5); p50 < 1 || p50 > 4 {
		t.Fatalf("p50 = %g", p50)
	}
	snap := m.Snapshot()
	for _, want := range []string{"rfbs", "pool", "dp_ms", "count=5"} {
		if !strings.Contains(snap, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, snap)
		}
	}
	// Sorted output.
	if strings.Index(snap, "dp_ms") > strings.Index(snap, "rfbs") {
		t.Fatalf("snapshot not sorted:\n%s", snap)
	}
	// Kind mismatch hands out a nil no-op handle rather than panicking.
	if g := m.Gauge("rfbs"); g != nil {
		t.Fatal("kind mismatch should return nil")
	}
	m.Gauge("rfbs").Set(1) // must not panic
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	const workers, iters = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Counter("c").Inc()
				m.Gauge("g").Set(float64(i))
				m.Histogram("h").Observe(float64(i % 13))
				_ = m.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("c").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := m.Histogram("h").Count(); got != workers*iters {
		t.Fatalf("hist count = %d, want %d", got, workers*iters)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("buyer", "fanout")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("seller")
			c.Set("k", "v")
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 16 {
		t.Fatalf("children = %d, want 16", got)
	}
}

func TestUnendedSpanDuration(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("b", "outer")
	c := root.Child("inner")
	time.Sleep(2 * time.Millisecond)
	c.End()
	// root never ended: its duration must cover the child.
	if root.Duration() < c.Duration() {
		t.Fatalf("root %v < child %v", root.Duration(), c.Duration())
	}
}
