package obs

// Windowed metrics history: a sampler that periodically snapshots every
// registered instrument into fixed-width window rollups — counter deltas,
// gauge last-values, and per-window histogram deltas with interpolated
// quantiles — retained in a ring of the last N windows and served as JSON at
// /metrics/history. The cumulative registry answers "how much, ever"; the
// history answers "what changed in the last few seconds", which is what the
// anomaly watchdog needs to compare the newest window against a trailing
// baseline.
//
// Sampling is allocation-free once the instrument set is stable: per-slot
// entry slices are reused across laps of the ring, tracker state lives in a
// flat slice, and histogram bucket deltas are computed into a stack array.
// Only registry growth (new instruments) re-allocates the tracker table.

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// CounterWindow is one counter's activity inside a window.
type CounterWindow struct {
	Name  string `json:"name"`
	Delta int64  `json:"delta"`
	Total int64  `json:"total"`
}

// GaugeWindow is one gauge's value at the window's close.
type GaugeWindow struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistWindow is one histogram's delta inside a window: how many observations
// landed, their sum, and quantiles interpolated from the bucket deltas alone
// (not the cumulative distribution), so a slow window stands out even after
// days of fast ones.
type HistWindow struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Window is one fixed-width rollup of the whole registry.
type Window struct {
	Seq      int64           `json:"seq"`
	StartMS  int64           `json:"start_unix_ms"`
	EndMS    int64           `json:"end_unix_ms"`
	Counters []CounterWindow `json:"counters,omitempty"`
	Gauges   []GaugeWindow   `json:"gauges,omitempty"`
	Hists    []HistWindow    `json:"histograms,omitempty"`
}

// CounterDelta returns the named counter's delta in this window.
func (w *Window) CounterDelta(name string) (int64, bool) {
	for i := range w.Counters {
		if w.Counters[i].Name == name {
			return w.Counters[i].Delta, true
		}
	}
	return 0, false
}

// GaugeValue returns the named gauge's value at the window's close.
func (w *Window) GaugeValue(name string) (float64, bool) {
	for i := range w.Gauges {
		if w.Gauges[i].Name == name {
			return w.Gauges[i].Value, true
		}
	}
	return 0, false
}

// Hist returns the named histogram's windowed delta.
func (w *Window) Hist(name string) (HistWindow, bool) {
	for i := range w.Hists {
		if w.Hists[i].Name == name {
			return w.Hists[i], true
		}
	}
	return HistWindow{}, false
}

// tracker carries one instrument's previous cumulative state between samples.
type tracker struct {
	name        string
	c           *Counter
	g           *Gauge
	h           *Histogram
	prevC       int64
	prevHCount  int64
	prevHSum    float64
	prevBuckets [histBuckets]int64
}

// History samples a Metrics registry into a ring of fixed-width windows.
// Construct with NewHistory, then either Start a sampler goroutine or call
// Sample manually (experiments and tests drive windows deterministically
// that way). A nil *History is a no-op everywhere, mirroring the rest of the
// obs layer's off switches.
type History struct {
	m      *Metrics
	window time.Duration

	mu       sync.Mutex
	trk      []tracker
	ring     []Window // slot storage reused every lap
	seq      int64    // windows sampled so far
	lastMS   int64    // close time of the previous window
	onWindow func(*Window)

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// DefaultHistoryWindow and DefaultHistoryKeep shape a NewHistory ring when
// the caller passes zero values: 5-second windows, the last 24 retained
// (two minutes of history).
const (
	DefaultHistoryWindow = 5 * time.Second
	DefaultHistoryKeep   = 24
)

// NewHistory builds a history over m with the given window width and ring
// capacity (zero values take the defaults). The sampler does not run until
// Start; Sample can always be called directly.
func NewHistory(m *Metrics, window time.Duration, keep int) *History {
	if window <= 0 {
		window = DefaultHistoryWindow
	}
	if keep < 1 {
		keep = DefaultHistoryKeep
	}
	return &History{
		m:      m,
		window: window,
		ring:   make([]Window, keep),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Window reports the configured window width (0 for nil).
func (h *History) Window() time.Duration {
	if h == nil {
		return 0
	}
	return h.window
}

// OnWindow registers fn to run synchronously after each sample with the
// freshly closed window — the watchdog's attachment point. fn runs under the
// history lock and must not retain the *Window (its storage is reused) nor
// call back into this History.
func (h *History) OnWindow(fn func(*Window)) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.onWindow = fn
	h.mu.Unlock()
}

// refreshTrackers rebuilds the tracker table from the registry, keeping
// accumulated prev state for instruments that survive. Callers hold h.mu.
func (h *History) refreshTrackers() {
	old := make(map[string]*tracker, len(h.trk))
	for i := range h.trk {
		old[h.trk[i].name] = &h.trk[i]
	}
	var next []tracker
	h.m.Each(func(name string, instrument any) {
		t := tracker{name: name}
		if prev, ok := old[name]; ok {
			t = *prev
		}
		switch inst := instrument.(type) {
		case *Counter:
			t.c = inst
		case *Gauge:
			t.g = inst
		case *Histogram:
			t.h = inst
		default:
			return
		}
		next = append(next, t)
	})
	sort.Slice(next, func(i, j int) bool { return next[i].name < next[j].name })
	h.trk = next
}

// Sample closes one window now: every instrument's activity since the
// previous sample is rolled into the next ring slot, and the OnWindow hook
// (if any) runs with the result. Allocation-free when the instrument set has
// not grown since the last call.
func (h *History) Sample() {
	if h == nil {
		return
	}
	now := time.Now().UnixMilli()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.m.Size() != len(h.trk) {
		h.refreshTrackers()
	}
	w := &h.ring[h.seq%int64(len(h.ring))]
	w.Seq = h.seq
	w.StartMS = h.lastMS
	if w.StartMS == 0 {
		w.StartMS = now - h.window.Milliseconds()
	}
	w.EndMS = now
	w.Counters = w.Counters[:0]
	w.Gauges = w.Gauges[:0]
	w.Hists = w.Hists[:0]
	for i := range h.trk {
		t := &h.trk[i]
		switch {
		case t.c != nil:
			total := t.c.Value()
			w.Counters = append(w.Counters, CounterWindow{Name: t.name, Delta: total - t.prevC, Total: total})
			t.prevC = total
		case t.g != nil:
			w.Gauges = append(w.Gauges, GaugeWindow{Name: t.name, Value: t.g.Value()})
		case t.h != nil:
			count := t.h.Count()
			sum := t.h.Sum()
			hw := HistWindow{Name: t.name, Count: count - t.prevHCount, Sum: sum - t.prevHSum}
			if hw.Count > 0 {
				var delta [histBuckets]int64
				for b := 0; b < histBuckets; b++ {
					cur := t.h.buckets[b].Load()
					delta[b] = cur - t.prevBuckets[b]
					t.prevBuckets[b] = cur
				}
				// Clamp to the cumulative max: a window's values cannot
				// exceed the all-time extreme, and the clamp keeps
				// one-observation windows exact at the top bucket.
				hw.P50 = quantileFromBuckets(&delta, hw.Count, 0.50, 0, t.h.Max())
				hw.P95 = quantileFromBuckets(&delta, hw.Count, 0.95, 0, t.h.Max())
				hw.P99 = quantileFromBuckets(&delta, hw.Count, 0.99, 0, t.h.Max())
			}
			t.prevHCount, t.prevHSum = count, sum
			w.Hists = append(w.Hists, hw)
		}
	}
	h.seq++
	h.lastMS = now
	if h.onWindow != nil {
		h.onWindow(w)
	}
}

// Start launches the sampler goroutine, closing a window every window width
// until Stop. Idempotent; no-op on nil.
func (h *History) Start() {
	if h == nil {
		return
	}
	h.startOnce.Do(func() {
		go func() {
			defer close(h.done)
			tick := time.NewTicker(h.window)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					h.Sample()
				case <-h.stop:
					return
				}
			}
		}()
	})
}

// Stop halts the sampler goroutine (if Start ran) and waits for it to exit.
// Safe to call multiple times and on a history that never started.
func (h *History) Stop() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
	h.startOnce.Do(func() { close(h.done) }) // never started: unblock the wait
	<-h.done
}

// Len reports how many windows have been closed so far (0 for nil).
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	n := int(h.seq)
	if n > len(h.ring) {
		n = len(h.ring)
	}
	return n
}

// Windows returns deep copies of up to n retained windows, newest first
// (all retained when n <= 0). The copies are safe to hold across samples.
func (h *History) Windows(n int) []Window {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	k := int(h.seq)
	if k > len(h.ring) {
		k = len(h.ring)
	}
	if n > 0 && n < k {
		k = n
	}
	out := make([]Window, 0, k)
	for i := 0; i < k; i++ {
		slot := &h.ring[(h.seq-1-int64(i))%int64(len(h.ring))]
		cp := *slot
		cp.Counters = append([]CounterWindow(nil), slot.Counters...)
		cp.Gauges = append([]GaugeWindow(nil), slot.Gauges...)
		cp.Hists = append([]HistWindow(nil), slot.Hists...)
		out = append(out, cp)
	}
	return out
}

// historyPayload is the /metrics/history JSON envelope.
type historyPayload struct {
	WindowMS int64    `json:"window_ms"`
	Keep     int      `json:"keep"`
	Taken    int64    `json:"windows_taken"`
	Windows  []Window `json:"windows"`
}

// ServeHTTP serves the retained windows as JSON, newest first; ?n=k limits
// the count. 404 until at least one window has closed, mirroring /trace/last.
func (h *History) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h == nil {
		http.Error(w, "metrics history disabled", http.StatusNotFound)
		return
	}
	n := 0
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	windows := h.Windows(n)
	if len(windows) == 0 {
		http.Error(w, "no windows sampled yet", http.StatusNotFound)
		return
	}
	h.mu.Lock()
	payload := historyPayload{
		WindowMS: h.window.Milliseconds(),
		Keep:     len(h.ring),
		Taken:    h.seq,
		Windows:  windows,
	}
	h.mu.Unlock()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(payload)
}
