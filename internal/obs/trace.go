package obs

// Distributed tracing: one negotiation, one trace across the federation.
//
// The buyer mints a TraceContext and stamps it on every outgoing trading
// message (RFB, ImproveReq, ExecReq). A sampled seller records its pricing /
// subcontract / execution work into a detached span tree and ships the
// finished subtree back piggybacked on the reply as a SpanPayload. The buyer
// grafts that payload under the span that issued the call, normalizing the
// remote clock Cristian-style from the request/response timestamps, so
// WriteChromeTrace / ExplainAnalyze show seller-side dp-pricing (and Depth-1
// subcontract) spans nested inside the buyer's RequestBids span on one
// coherent timeline.

import (
	"fmt"
	"sync/atomic"
	"time"
)

// TraceContext is the trace state carried on trading messages. The zero
// value means "not sampled": it adds no bytes to any wire-size accounting and
// sellers ignore it entirely, keeping the untraced hot path identical to a
// build without tracing.
type TraceContext struct {
	// TraceID identifies the negotiation's trace, unique per optimization.
	TraceID string
	// Parent is the buyer-side span ID the reply's subtree grafts under.
	Parent uint64
	// Sampled is the head-sampling decision: when false, sellers must not
	// record or ship any trace data for this exchange.
	Sampled bool
}

// WireSize is the accounted on-wire cost of the context: zero when
// unsampled (the decision rides in a single flag bit already accounted in
// the message framing), id + parent id + flag when sampled.
func (c TraceContext) WireSize() int {
	if !c.Sampled {
		return 0
	}
	return 9 + len(c.TraceID) // 8B parent span id + 1B flag + trace id
}

var traceSeq atomic.Uint64

// traceEpoch distinguishes trace IDs across process restarts.
var traceEpoch = time.Now().UnixNano()

// NewTraceID mints a unique trace identifier with a human-readable prefix
// (conventionally the buyer node's ID).
func NewTraceID(prefix string) string {
	return fmt.Sprintf("%s-%08x-%04x", prefix, uint32(traceEpoch>>16), traceSeq.Add(1)&0xffff)
}

// SpanPayload is the serializable form of a span subtree, shipped from
// seller to buyer piggybacked on a reply. Timestamps are absolute unix
// microseconds on the *sender's* clock; Graft rebases them onto the
// receiver's timeline.
type SpanPayload struct {
	Name    string
	Source  string
	StartUS int64 // unix µs, sender clock
	EndUS   int64 // unix µs, sender clock; 0 when Unfinished
	// Unfinished marks a span that had not Ended when the payload was built
	// (e.g. cut by a deadline); exporters render it with unfinished=true.
	Unfinished bool
	Attrs      []Attr
	Children   []*SpanPayload
}

// WireSize is the accounted serialized size of the subtree (nil-safe).
func (p *SpanPayload) WireSize() int {
	if p == nil {
		return 0
	}
	n := 24 + len(p.Name) + len(p.Source) // framing + 2×8B timestamps + flags
	for _, a := range p.Attrs {
		n += 8 + len(a.Key) + len(a.Val)
	}
	for _, c := range p.Children {
		n += c.WireSize()
	}
	return n
}

// Payload snapshots the span subtree into its serializable form. Safe to
// call concurrently with Child/Set/End on any span of the subtree; a span
// not yet Ended is marked Unfinished. Returns nil for a nil span.
func (s *Span) Payload() *SpanPayload {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	end := s.end
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	p := &SpanPayload{
		Name:    s.name,
		Source:  s.source,
		StartUS: s.start.UnixMicro(),
		Attrs:   attrs,
	}
	if end.IsZero() {
		p.Unfinished = true
	} else {
		p.EndUS = end.UnixMicro()
	}
	for _, c := range children {
		p.Children = append(p.Children, c.Payload())
	}
	return p
}

// Graft attaches a remote span subtree under s, rebasing its timestamps onto
// the local clock. sentAt/recvAt bracket the call that carried the payload:
// the clock offset is estimated Cristian-style by assuming the midpoint of
// the remote root span coincides with the midpoint of the local call
// interval. The grafted root is annotated remote=true and with the applied
// offset. No-op when s or p is nil, so unsampled and failed calls cost
// nothing and retried calls graft at most once (one payload per returned
// reply).
func (s *Span) Graft(p *SpanPayload, sentAt, recvAt time.Time) {
	if s == nil || p == nil {
		return
	}
	remoteStart := time.UnixMicro(p.StartUS)
	remoteEnd := remoteStart
	if p.EndUS > p.StartUS {
		remoteEnd = time.UnixMicro(p.EndUS)
	}
	remoteMid := remoteStart.Add(remoteEnd.Sub(remoteStart) / 2)
	localMid := sentAt.Add(recvAt.Sub(sentAt) / 2)
	offset := localMid.Sub(remoteMid)
	c := adoptPayload(s.tracer, p, offset)
	c.attrs = append(c.attrs,
		Attr{Key: "remote", Val: "true"},
		Attr{Key: "clock_offset_us", Val: fmt.Sprint(offset.Microseconds())})
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// adoptPayload rebuilds a payload subtree as local spans shifted by offset.
// The rebuilt spans are fresh (unshared), so no locking is needed until the
// root is attached.
func adoptPayload(t *Tracer, p *SpanPayload, offset time.Duration) *Span {
	c := &Span{
		tracer: t,
		source: p.Source,
		name:   p.Name,
		id:     spanSeq.Add(1),
		start:  time.UnixMicro(p.StartUS).Add(offset),
	}
	c.attrs = append([]Attr(nil), p.Attrs...)
	if p.Unfinished {
		c.attrs = append(c.attrs, Attr{Key: "unfinished", Val: "true"})
		// Leave end zero: Duration falls back to the latest descendant end.
	} else {
		end := p.EndUS
		if end < p.StartUS {
			end = p.StartUS
		}
		c.end = time.UnixMicro(end).Add(offset)
	}
	for _, ch := range p.Children {
		c.children = append(c.children, adoptPayload(t, ch, offset))
	}
	return c
}
