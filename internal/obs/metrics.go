package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a registry of named counters, gauges and histograms. Lookup
// (Counter/Gauge/Histogram) interns the instrument on first use; updates on
// the returned handles are single atomic operations, so instrumented code
// should resolve handles once and reuse them on hot paths. A nil *Metrics
// registry hands out nil handles whose update methods are no-ops.
type Metrics struct {
	m    sync.Map // name -> *Counter | *Gauge | *Histogram
	help sync.Map // name -> string, emitted as # HELP by WritePrometheus
	size atomic.Int64
}

// Size returns the number of registered instruments (0 for nil). The history
// sampler polls it to notice registry growth without walking the map.
func (m *Metrics) Size() int {
	if m == nil {
		return 0
	}
	return int(m.size.Load())
}

// SetHelp registers one-line help text for the named instrument;
// WritePrometheus emits it as a "# HELP" line ahead of the "# TYPE" line.
// Registration is optional and independent of instrument creation. No-op on
// a nil registry or empty help.
func (m *Metrics) SetHelp(name, help string) {
	if m == nil || help == "" {
		return
	}
	m.help.Store(name, help)
}

// Help returns the help text registered for name ("" when none).
func (m *Metrics) Help(name string) string {
	if m == nil {
		return ""
	}
	if v, ok := m.help.Load(name); ok {
		return v.(string)
	}
	return ""
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Counter returns the counter registered under name, creating it if absent.
// Returns nil (a valid no-op handle) on a nil registry or if the name is
// already taken by a different instrument kind.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	if v, ok := m.m.Load(name); ok {
		c, _ := v.(*Counter)
		return c
	}
	v, loaded := m.m.LoadOrStore(name, &Counter{})
	if !loaded {
		m.size.Add(1)
	}
	c, _ := v.(*Counter)
	return c
}

// Gauge returns the gauge registered under name, creating it if absent.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	if v, ok := m.m.Load(name); ok {
		g, _ := v.(*Gauge)
		return g
	}
	v, loaded := m.m.LoadOrStore(name, &Gauge{})
	if !loaded {
		m.size.Add(1)
	}
	g, _ := v.(*Gauge)
	return g
}

// Histogram returns the histogram registered under name, creating it if
// absent.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	if v, ok := m.m.Load(name); ok {
		h, _ := v.(*Histogram)
		return h
	}
	v, loaded := m.m.LoadOrStore(name, &Histogram{})
	if !loaded {
		m.size.Add(1)
	}
	h, _ := v.(*Histogram)
	return h
}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float64, stored as raw bits for atomic access.
type Gauge struct{ bits atomic.Uint64 }

// Set records the current value. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of exponential buckets. Bucket i collects
// observations in (base·2^(i-1), base·2^i]; with base = 1µs (0.001 ms) the
// top bucket starts around 67 s, wide enough for any phase this system times.
const histBuckets = 28

// histBase is the upper bound of bucket 0, in the histogram's own unit.
// Observations are conventionally milliseconds, so this is one microsecond.
const histBase = 0.001

// Histogram accumulates a distribution in exponential buckets. Observe is a
// handful of atomic operations and allocation-free. Quantiles are estimated
// by linear interpolation inside the bucket holding the rank (accurate to a
// fraction of the 2× bucket width, exact when a bucket holds one value).
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Int64
}

// Observe records one sample. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
	atomicMinFloat(&h.minBits, v)
	atomicMaxFloat(&h.maxBits, v)
	h.buckets[bucketOf(v)].Add(1)
}

func bucketOf(v float64) int {
	i := 0
	for bound := histBase; i < histBuckets-1 && v > bound; i++ {
		bound *= 2
	}
	return i
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Min and Max return the observed extremes (0 for nil or empty).
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Mean returns the arithmetic mean (0 for nil or empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the exponential
// bucket holding that rank and interpolating linearly inside it, clamped to
// the observed min/max so single-bucket distributions report exact values.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	return quantileFromBuckets(&counts, n, q, h.Min(), h.Max())
}

// quantileFromBuckets interpolates the q-quantile over one set of exponential
// bucket counts (the registry-wide bounds: bucket i covers
// (histBase·2^(i-1), histBase·2^i]). Shared by cumulative histograms and the
// windowed history's per-window deltas, which is why it takes plain counts.
// min/max clamp the interpolated value when known; pass 0,0 when they aren't.
func quantileFromBuckets(counts *[histBuckets]int64, n int64, q, min, max float64) float64 {
	if n <= 0 {
		return 0
	}
	rank := math.Ceil(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	lower, upper := 0.0, histBase
	for i := 0; i < histBuckets; i++ {
		cnt := counts[i]
		if cnt > 0 && float64(seen+cnt) >= rank {
			lo, hi := lower, upper
			if max > 0 {
				if i == histBuckets-1 || hi > max {
					hi = max
				}
				if lo > max {
					lo = max
				}
			}
			if min > 0 && lo < min {
				lo = min
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(seen)) / float64(cnt)
			return lo + frac*(hi-lo)
		}
		seen += cnt
		lower = upper
		upper *= 2
	}
	if max > 0 {
		return max
	}
	return lower
}

func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		cur := math.Float64frombits(old)
		// The zero value decodes to 0.0; treat a never-written min as +inf
		// by letting the first CAS from an empty histogram pass through
		// count==1 semantics: callers Observe count before min, so a stale
		// 0 min only matters if a real 0 was never observed. Guard by
		// comparing against the first value explicitly.
		if old != 0 && cur <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if old != 0 && math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Snapshot renders every registered instrument as sorted "name value" lines:
// counters as integers, gauges as floats, histograms as
// count/sum/mean/p50/p95/p99/max. The output is stable across runs (sorted by
// name) so it can be diffed.
func (m *Metrics) Snapshot() string {
	if m == nil {
		return ""
	}
	type line struct{ name, text string }
	var lines []line
	m.m.Range(func(k, v any) bool {
		name := k.(string)
		switch inst := v.(type) {
		case *Counter:
			lines = append(lines, line{name, fmt.Sprintf("%-46s %d", name, inst.Value())})
		case *Gauge:
			lines = append(lines, line{name, fmt.Sprintf("%-46s %g", name, inst.Value())})
		case *Histogram:
			lines = append(lines, line{name, fmt.Sprintf("%-46s count=%d sum=%.3f mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
				name, inst.Count(), inst.Sum(), inst.Mean(), inst.Quantile(0.50), inst.Quantile(0.95), inst.Quantile(0.99), inst.Max())})
		}
		return true
	})
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l.text)
		b.WriteByte('\n')
	}
	return b.String()
}

// Each calls fn for every registered instrument, in name order. The value is
// a *Counter, *Gauge, or *Histogram.
func (m *Metrics) Each(fn func(name string, instrument any)) {
	if m == nil {
		return
	}
	var names []string
	m.m.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	for _, n := range names {
		if v, ok := m.m.Load(n); ok {
			fn(n, v)
		}
	}
}
