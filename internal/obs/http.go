package obs

// Live exposition over HTTP, stdlib only: /metrics in Prometheus text
// format, /debug/pprof/* via net/http/pprof, and /trace/last serving the
// most recent sampled negotiation as span JSONL. qtnode mounts this on
// -obs-addr so a running federation can be scraped and profiled without
// stopping it.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"
)

// promName sanitizes an instrument name into a valid Prometheus metric name:
// every character outside [a-zA-Z0-9_:] becomes '_' (so "node.n0.rfbs" is
// exposed as "node_n0_rfbs"), and a leading digit gains a '_' prefix.
func promName(name string) string {
	b := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b = append(b, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b = append(b, '_')
			}
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	if len(b) == 0 {
		return "_"
	}
	return string(b)
}

// promFloat renders a float the way Prometheus expects, mapping +Inf/-Inf.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// promHelpEscape escapes help text for a # HELP line (backslash and
// newline, per the text exposition format).
var promHelpEscape = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// WritePrometheus writes every registered instrument in Prometheus text
// exposition format (version 0.0.4), sorted by name. Counters and gauges
// are single samples; histograms expose cumulative _bucket{le="..."} series
// over the registry's exponential bounds plus _sum and _count. Instruments
// with registered help text (SetHelp) get a # HELP line ahead of # TYPE.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	m.Each(func(name string, instrument any) {
		pn := promName(name)
		if h := m.Help(name); h != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", pn, promHelpEscape.Replace(h))
		}
		switch inst := instrument.(type) {
		case *Counter:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, inst.Value())
		case *Gauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(inst.Value()))
		case *Histogram:
			fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
			var cum int64
			bound := histBase
			for i := 0; i < histBuckets; i++ {
				cum += inst.buckets[i].Load()
				le := promFloat(bound)
				if i == histBuckets-1 {
					le = "+Inf"
				}
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", pn, le, cum)
				bound *= 2
			}
			fmt.Fprintf(bw, "%s_sum %s\n", pn, promFloat(inst.Sum()))
			fmt.Fprintf(bw, "%s_count %d\n", pn, inst.Count())
			// Estimated quantiles as companion gauges (summary-style
			// {quantile=...} labels would collide with the histogram type, so
			// they ride as _p50/_p95/_p99 gauges scrapers can alert on
			// without doing histogram_quantile math).
			for _, q := range [...]struct {
				suffix string
				q      float64
			}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
				fmt.Fprintf(bw, "# TYPE %s_%s gauge\n%s_%s %s\n",
					pn, q.suffix, pn, q.suffix, promFloat(inst.Quantile(q.q)))
			}
		}
	})
	return bw.Flush()
}

// ServeHTTP makes the registry an http.Handler serving /metrics scrapes.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = m.WritePrometheus(w)
}

// traceLogKeep is how many recent sampled traces a TraceLog retains by
// default (NewTraceLog); NewTraceLogN overrides it per log.
const traceLogKeep = 8

// TraceLog retains a small ring of the most recently sampled negotiations'
// span payloads so a live node can serve them at /trace/last. Writers call
// Record with the payload they are about to ship (seller side) or just
// rendered (buyer side); readers get JSONL identical in shape to
// Tracer.WriteJSONL.
type TraceLog struct {
	mu     sync.Mutex
	keep   int            // ring capacity (0 means traceLogKeep)
	recent []*SpanPayload // newest last, at most keep
	at     time.Time      // when the newest was recorded
}

// NewTraceLog returns an empty trace log retaining traceLogKeep traces.
func NewTraceLog() *TraceLog { return &TraceLog{} }

// NewTraceLogN returns an empty trace log retaining the last n traces
// (n < 1 falls back to the default capacity).
func NewTraceLogN(n int) *TraceLog {
	if n < 1 {
		n = 0
	}
	return &TraceLog{keep: n}
}

// Keep reports the ring capacity (0 for nil).
func (l *TraceLog) Keep() int {
	if l == nil {
		return 0
	}
	if l.keep > 0 {
		return l.keep
	}
	return traceLogKeep
}

// Record stores p as the most recent trace, evicting the oldest once the
// ring is at capacity. Nil-safe on both sides.
func (l *TraceLog) Record(p *SpanPayload) {
	if l == nil || p == nil {
		return
	}
	l.mu.Lock()
	keep := l.keep
	if keep < 1 {
		keep = traceLogKeep
	}
	l.recent = append(l.recent, p)
	if len(l.recent) > keep {
		l.recent = l.recent[len(l.recent)-keep:]
	}
	l.at = time.Now()
	l.mu.Unlock()
}

// Last returns the most recent recorded payload and when it was recorded
// (nil when nothing has been sampled yet).
func (l *TraceLog) Last() (*SpanPayload, time.Time) {
	if l == nil {
		return nil, time.Time{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recent) == 0 {
		return nil, time.Time{}
	}
	return l.recent[len(l.recent)-1], l.at
}

// Recent returns up to n retained payloads, newest first (all retained when
// n <= 0).
func (l *TraceLog) Recent(n int) []*SpanPayload {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := len(l.recent)
	if n > 0 && n < k {
		k = n
	}
	out := make([]*SpanPayload, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, l.recent[len(l.recent)-1-i])
	}
	return out
}

// ServeHTTP serves sampled traces as span JSONL: the most recent one by
// default, the last k (newest first) with ?n=k. 404 when none has been
// recorded yet.
func (l *TraceLog) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := 1
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	ps := l.Recent(n)
	if len(ps) == 0 {
		http.Error(w, "no sampled trace recorded yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	for _, p := range ps {
		_ = WritePayloadJSONL(w, p)
	}
}

// Endpoint mounts one extra handler on the exposition mux — how packages
// the obs layer must not depend on (e.g. the trading ledger) join a node's
// observability surface.
type Endpoint struct {
	Path    string
	Handler http.Handler
}

// HealthEndpoint builds a /healthz Endpoint from a status provider: each
// request JSON-encodes status() (drain state, admission queue depth, breaker
// summary — whatever the process knows about itself). When status reports a
// field "ready": false the response is 503, so load balancers and readiness
// probes can gate on the HTTP code alone.
func HealthEndpoint(status func() any) Endpoint {
	return Endpoint{Path: "/healthz", Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		body, err := json.Marshal(status())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if bytes.Contains(body, []byte(`"ready":false`)) {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_, _ = w.Write(body)
	})}
}

// Handler mounts the exposition surface on a fresh mux: /metrics (when m is
// non-nil), /trace/last (when tl is non-nil), /debug/pprof/*, plus any
// extra endpoints (skipping nil handlers). Unless an extra endpoint claims
// /healthz itself, a default liveness probe answering {"ready":true} is
// mounted there, so every exposition surface is pollable for readiness.
func Handler(m *Metrics, tl *TraceLog, extra ...Endpoint) http.Handler {
	mux := http.NewServeMux()
	if m != nil {
		mux.Handle("/metrics", m)
	}
	if tl != nil {
		mux.Handle("/trace/last", tl)
	}
	healthMounted := false
	for _, e := range extra {
		if e.Handler != nil {
			mux.Handle(e.Path, e.Handler)
			if e.Path == "/healthz" {
				healthMounted = true
			}
		}
	}
	if !healthMounted {
		h := HealthEndpoint(func() any { return map[string]any{"ready": true} })
		mux.Handle(h.Path, h.Handler)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
