package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func attrVal(attrs []Attr, key string) (string, bool) {
	for _, a := range attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

func TestTraceContextWireSize(t *testing.T) {
	var zero TraceContext
	if zero.WireSize() != 0 {
		t.Fatalf("unsampled context must cost zero wire bytes, got %d", zero.WireSize())
	}
	// Parent alone (stamped but unsampled) still costs nothing.
	if (TraceContext{Parent: 42}).WireSize() != 0 {
		t.Fatal("unsampled context with parent must cost zero wire bytes")
	}
	c := TraceContext{TraceID: "hq-0001-0001", Sampled: true}
	if c.WireSize() != 9+len(c.TraceID) {
		t.Fatalf("sampled context wire size: %d", c.WireSize())
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID("hq")
		if !strings.HasPrefix(id, "hq-") {
			t.Fatalf("trace id missing prefix: %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestPayloadSnapshot(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("seller", "request-bids")
	root.Set("rfb", "r1")
	c := root.Child("dp-pricing")
	c.Set("plans", 3)
	c.End()
	open := root.Child("stalled")
	_ = open // never ended
	root.End()

	p := root.Payload()
	if p.Name != "request-bids" || p.Source != "seller" {
		t.Fatalf("payload identity: %+v", p)
	}
	if p.Unfinished || p.EndUS < p.StartUS {
		t.Fatalf("ended span must carry its end: %+v", p)
	}
	if v, ok := attrVal(p.Attrs, "rfb"); !ok || v != "r1" {
		t.Fatalf("payload attrs: %+v", p.Attrs)
	}
	if len(p.Children) != 2 {
		t.Fatalf("children: %d", len(p.Children))
	}
	if !p.Children[1].Unfinished || p.Children[1].EndUS != 0 {
		t.Fatalf("open child must be unfinished: %+v", p.Children[1])
	}
	if p.WireSize() <= 0 {
		t.Fatal("payload wire size must be positive")
	}
	if (*SpanPayload)(nil).WireSize() != 0 {
		t.Fatal("nil payload must cost nothing")
	}
	if (*Span)(nil).Payload() != nil {
		t.Fatal("nil span payload must be nil")
	}
}

func TestGraftRebasesRemoteClock(t *testing.T) {
	// A remote span on a clock skewed ~1h into the future, shipped back on a
	// local call that took 40ms. Graft must land the subtree inside the local
	// call interval, not an hour away.
	skew := time.Hour
	recvAt := time.Now()
	sentAt := recvAt.Add(-40 * time.Millisecond)
	remoteStart := sentAt.Add(10 * time.Millisecond).Add(skew)
	p := &SpanPayload{
		Name: "request-bids", Source: "corfu",
		StartUS: remoteStart.UnixMicro(),
		EndUS:   remoteStart.Add(20 * time.Millisecond).UnixMicro(),
		Children: []*SpanPayload{{
			Name: "dp-pricing", Source: "corfu",
			StartUS: remoteStart.Add(5 * time.Millisecond).UnixMicro(),
			EndUS:   remoteStart.Add(15 * time.Millisecond).UnixMicro(),
		}},
	}

	tr := NewTracer()
	host := tr.Start("hq", "rfb corfu")
	host.Graft(p, sentAt, recvAt)
	host.End()

	kids := host.Children()
	if len(kids) != 1 {
		t.Fatalf("grafted children: %d", len(kids))
	}
	g := kids[0]
	if g.Name() != "request-bids" || g.Source() != "corfu" {
		t.Fatalf("grafted span identity: %s/%s", g.Source(), g.Name())
	}
	if v, ok := attrVal(g.Attrs(), "remote"); !ok || v != "true" {
		t.Fatalf("grafted span missing remote=true: %v", g.Attrs())
	}
	if _, ok := attrVal(g.Attrs(), "clock_offset_us"); !ok {
		t.Fatalf("grafted span missing clock_offset_us: %v", g.Attrs())
	}
	// The rebased midpoint must coincide with the local call midpoint, i.e.
	// fall well within [sentAt, recvAt] — nowhere near the skewed clock.
	start := g.start
	if start.Before(sentAt.Add(-time.Millisecond)) || start.After(recvAt.Add(time.Millisecond)) {
		t.Fatalf("rebased start %v outside local call [%v, %v]", start, sentAt, recvAt)
	}
	if g.Duration() != 20*time.Millisecond {
		t.Fatalf("graft must preserve remote durations: %v", g.Duration())
	}
	if len(g.Children()) != 1 || g.Children()[0].Duration() != 10*time.Millisecond {
		t.Fatalf("nested child must survive the graft: %v", g.Children())
	}
}

func TestGraftNilSafety(t *testing.T) {
	tr := NewTracer()
	host := tr.Start("hq", "rfb x")
	host.Graft(nil, time.Now(), time.Now()) // failed / unsampled call
	host.End()
	if len(host.Children()) != 0 {
		t.Fatal("nil payload must not graft")
	}
	var nilSpan *Span
	nilSpan.Graft(&SpanPayload{Name: "x"}, time.Now(), time.Now()) // must not panic
}

func TestGraftUnfinishedPayload(t *testing.T) {
	tr := NewTracer()
	host := tr.Start("hq", "rfb y")
	now := time.Now()
	host.Graft(&SpanPayload{
		Name: "request-bids", Source: "y",
		StartUS: now.UnixMicro(), Unfinished: true,
	}, now, now.Add(time.Millisecond))
	host.End()
	g := host.Children()[0]
	if v, ok := attrVal(g.Attrs(), "unfinished"); !ok || v != "true" {
		t.Fatalf("unfinished payload must be annotated: %v", g.Attrs())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestDropRoot(t *testing.T) {
	tr := NewTracer()
	a := tr.Start("hq", "optimize")
	b := tr.Start("hq", "execute")
	a.End()
	b.End()
	tr.DropRoot(a)
	roots := tr.Roots()
	if len(roots) != 1 || roots[0] != b {
		t.Fatalf("DropRoot must remove exactly the given root: %v", roots)
	}
	tr.DropRoot(a) // absent: no-op
	var nilTr *Tracer
	nilTr.DropRoot(b) // nil-safe
}

func TestSamplingModes(t *testing.T) {
	if !(*Sampling)(nil).SampleHead() || !(*Sampling)(nil).Collect(false) || !(*Sampling)(nil).Keep(false, 0) {
		t.Fatal("nil sampling must behave as SampleAlways")
	}
	always := &Sampling{Mode: SampleAlways}
	if !always.SampleHead() || !always.Collect(true) {
		t.Fatal("SampleAlways must sample")
	}
	never := &Sampling{Mode: SampleNever}
	if never.SampleHead() || never.Collect(false) || never.Keep(false, time.Hour) {
		t.Fatal("SampleNever must not sample, collect or keep")
	}
}

func TestSamplingRatioSeededDeterministic(t *testing.T) {
	draw := func() []bool {
		s := &Sampling{Mode: SampleRatio, Ratio: 0.3, Seed: 42}
		out := make([]bool, 200)
		for i := range out {
			out[i] = s.SampleHead()
		}
		return out
	}
	a, b := draw(), draw()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("seeded ratio sampling must be reproducible")
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("ratio 0.3 over %d draws sampled %d — not a mix", len(a), hits)
	}
}

func TestSamplingTailKeep(t *testing.T) {
	s := &Sampling{Mode: SampleNever, TailSlower: 50 * time.Millisecond}
	if s.SampleHead() {
		t.Fatal("head must say no")
	}
	if !s.Collect(false) {
		t.Fatal("tail sampling must force wire collection")
	}
	if s.Keep(false, 10*time.Millisecond) {
		t.Fatal("fast negotiation must be dropped")
	}
	if !s.Keep(false, 60*time.Millisecond) {
		t.Fatal("slow negotiation must be tail-kept")
	}
	if !s.Keep(true, 0) {
		t.Fatal("head-sampled negotiation must always be kept")
	}
}

// TestSpanConcurrentHammer drives one span with concurrent Child/Set/End and
// concurrent exporters (WriteJSONL, WriteChromeTrace, Payload, RenderText) —
// the -race regression test for the tracing hot path.
func TestSpanConcurrentHammer(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("hq", "optimize")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.Child(fmt.Sprintf("w%d-%d", w, i))
				c.Set("i", i)
				c.Graft(&SpanPayload{Name: "remote", Source: "s", StartUS: 1, EndUS: 2},
					time.Now(), time.Now())
				if i%2 == 0 {
					c.End()
				}
			}
		}(w)
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var buf bytes.Buffer
				_ = tr.WriteJSONL(&buf)
				_ = tr.WriteChromeTrace(&buf)
				_ = root.Payload()
				_ = tr.RenderText()
			}
		}()
	}
	wg.Wait()
	root.End()
	if root.Payload() == nil {
		t.Fatal("payload after hammer")
	}
}
