// Package obs is the federation's observability layer: a hierarchical span
// tracer, a registry of counters/gauges/histograms, and exporters (JSONL,
// Chrome trace_event JSON, plain text). It is built exclusively on the
// standard library and is designed around two rules:
//
//   - Nil safety. Every method works on a nil receiver: a nil *Tracer
//     produces nil *Spans, and every Span/Counter/Gauge/Histogram operation
//     on nil is a no-op that allocates nothing. Instrumented code therefore
//     never branches on "is tracing on?" — it just calls through, and the
//     disabled path costs one nil check.
//
//   - Lock-free hot paths. Metric updates are single atomic operations;
//     span construction takes one short mutex on its parent only when
//     tracing is actually enabled.
//
// The paper's evaluation (EXPERIMENTS.md F1–F11) is entirely about observing
// the trading protocol — wall time, messages, convergence — and this package
// is how those observations are attributed to phases (iterations, RFB
// fan-out, per-seller pricing, protocol rounds, plan generation) and to
// nodes, instead of being reported as opaque totals.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are stored rendered so
// exporters never re-inspect live objects.
type Attr struct {
	Key string
	Val string
}

// Tracer records a forest of span trees. One Tracer is typically scoped to
// one optimization (see qtrade.WithTrace) or shared across a federation for
// a whole benchmark run. A nil Tracer is valid and records nothing.
type Tracer struct {
	epoch time.Time

	mu    sync.Mutex
	roots []*Span
}

// NewTracer returns an empty tracer. Its epoch (the zero timestamp of all
// exported spans) is the moment of creation.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// Start opens a new root span attributed to source (a node id — exported as
// the span's thread/track). Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) Start(source, name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, source: source, name: name, id: spanSeq.Add(1), start: time.Now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// DropRoot removes a root span (and its whole subtree) from the tracer, so
// tail sampling can discard negotiations that turned out fast enough not to
// keep. No-op when s is not a root of t.
func (t *Tracer) DropRoot(s *Span) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	for i, r := range t.roots {
		if r == s {
			t.roots = append(t.roots[:i], t.roots[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
}

// Roots returns a snapshot of the recorded root spans in creation order.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// spanSeq issues process-unique span IDs. IDs exist so a remote parent can be
// named in a TraceContext; 0 is reserved for "no span" (the nil receiver).
var spanSeq atomic.Uint64

// Span is one timed region of a span tree. All methods are safe on a nil
// receiver and safe for concurrent use (children may be added from several
// goroutines, e.g. during RFB fan-out).
type Span struct {
	tracer *Tracer
	source string
	name   string
	id     uint64
	start  time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// ID returns the span's process-unique identifier (0 for nil). Carried as
// TraceContext.Parent so a remote subtree can be grafted under this span.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Child opens a sub-span. Nil-safe: a nil parent returns a nil child, so an
// entire call tree short-circuits to no-ops when tracing is off.
func (s *Span) Child(name string) *Span {
	return s.child(s.sourceOf(), name)
}

// ChildOn opens a sub-span attributed to a different source (track) — used
// when control flow crosses a node boundary in-process.
func (s *Span) ChildOn(source, name string) *Span {
	return s.child(source, name)
}

func (s *Span) sourceOf() string {
	if s == nil {
		return ""
	}
	return s.source
}

func (s *Span) child(source, name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, source: source, name: name, id: spanSeq.Add(1), start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Set annotates the span. The value is rendered immediately with fmt.Sprint.
func (s *Span) Set(key string, val any) {
	if s == nil {
		return
	}
	v := fmt.Sprint(val)
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
	s.mu.Unlock()
}

// End closes the span. The first End wins; later calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.mu.Unlock()
}

// Ended reports whether End has been called. Exporters use it to mark spans
// caught mid-flight (e.g. stragglers cut by a round deadline) as unfinished
// instead of rendering a bogus zero duration.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.end.IsZero()
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Source returns the span's source/track ("" for nil).
func (s *Span) Source() string {
	if s == nil {
		return ""
	}
	return s.source
}

// Attrs returns a snapshot of the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns a snapshot of the sub-spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Duration returns the span's length. An unended span extends to the latest
// end among its descendants (or zero if none ended yet).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.effectiveEnd().Sub(s.start)
}

// effectiveEnd is End, or the max descendant end for spans never closed
// (e.g. when an export races an in-flight optimization).
func (s *Span) effectiveEnd() time.Time {
	s.mu.Lock()
	end := s.end
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if !end.IsZero() {
		return end
	}
	end = s.start
	for _, c := range children {
		if ce := c.effectiveEnd(); ce.After(end) {
			end = ce
		}
	}
	return end
}
