package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestPrometheusGolden pins the exact exposition text for counters and
// gauges, including name sanitization and optional # HELP lines — the
// format third-party scrapers parse, so any change here is a breaking
// change. Instruments without registered help text get no # HELP line.
func TestPrometheusGolden(t *testing.T) {
	m := NewMetrics()
	m.Counter("node.n1.rfbs").Add(7)
	m.SetHelp("node.n1.rfbs", "RFBs served by this seller")
	m.Gauge("fault.breaker.n1-open").Set(1)
	m.Counter("buyer.hq.iterations").Add(3)

	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE buyer_hq_iterations counter",
		"buyer_hq_iterations 3",
		"# TYPE fault_breaker_n1_open gauge",
		"fault_breaker_n1_open 1",
		"# HELP node_n1_rfbs RFBs served by this seller",
		"# TYPE node_n1_rfbs counter",
		"node_n1_rfbs 7",
		"",
	}, "\n")
	if b.String() != want {
		t.Fatalf("prometheus text drifted:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestPrometheusHelpEscaping pins the # HELP escaping rules (backslash and
// newline) and the nil-registry no-op.
func TestPrometheusHelpEscaping(t *testing.T) {
	m := NewMetrics()
	m.Counter("a.b").Inc()
	m.SetHelp("a.b", "line one\nwith \\ backslash")
	var b strings.Builder
	_ = m.WritePrometheus(&b)
	if !strings.Contains(b.String(), `# HELP a_b line one\nwith \\ backslash`) {
		t.Fatalf("help escaping:\n%s", b.String())
	}
	var nilM *Metrics
	nilM.SetHelp("x", "y") // must not panic
	if nilM.Help("x") != "" {
		t.Fatal("nil registry returned help")
	}
}

// TestPrometheusHistogram checks the histogram series: cumulative buckets
// over the registry's exponential bounds, +Inf last, _sum and _count.
func TestPrometheusHistogram(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("buyer.hq.price_ms")
	h.Observe(0.0005) // bucket 0 (le=0.001)
	h.Observe(0.5)
	h.Observe(1e9) // beyond every finite bound → +Inf only

	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "# TYPE buyer_hq_price_ms histogram\n") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	lineRe := regexp.MustCompile(`^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? [0-9eE.+-]+|[a-zA-Z_:][a-zA-Z0-9_:]*(_sum|_count) [0-9eE.+-]+)$`)
	bucketRe := regexp.MustCompile(`^buyer_hq_price_ms_bucket\{le="([^"]+)"\} (\d+)$`)
	var bounds []string
	var counts []int64
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !lineRe.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
		if mm := bucketRe.FindStringSubmatch(line); mm != nil {
			bounds = append(bounds, mm[1])
			n, _ := strconv.ParseInt(mm[2], 10, 64)
			counts = append(counts, n)
		}
	}
	if len(bounds) != histBuckets {
		t.Fatalf("bucket lines: %d, want %d", len(bounds), histBuckets)
	}
	if bounds[0] != "0.001" || bounds[len(bounds)-1] != "+Inf" {
		t.Fatalf("bucket bounds: first %q last %q", bounds[0], bounds[len(bounds)-1])
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("buckets must be cumulative: %v", counts)
		}
	}
	if counts[0] != 1 {
		t.Fatalf("le=0.001 must hold the 0.0005 observation: %d", counts[0])
	}
	if counts[len(counts)-1] != 3 {
		t.Fatalf("+Inf bucket must hold every observation: %d", counts[len(counts)-1])
	}
	if !strings.Contains(out, "buyer_hq_price_ms_count 3") {
		t.Fatalf("missing _count:\n%s", out)
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"node.n0.rfbs":   "node_n0_rfbs",
		"net.a->b":       "net_a__b",
		"9lives":         "_9lives",
		"ok_name:colons": "ok_name:colons",
		"":               "_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	m := NewMetrics()
	m.Counter("node.n1.rfbs").Inc()
	tl := NewTraceLog()
	srv := httptest.NewServer(Handler(m, tl))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), b.String()
	}

	code, ctype, body := get("/metrics")
	if code != 200 || !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics: %d %q", code, ctype)
	}
	if !strings.Contains(body, "node_n1_rfbs 1") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	if code, _, _ := get("/trace/last"); code != 404 {
		t.Fatalf("/trace/last before any sample: %d, want 404", code)
	}
	tr := NewTracer()
	sp := tr.Start("corfu", "request-bids")
	sp.Child("dp-pricing").End()
	sp.End()
	tl.Record(sp.Payload())
	code, _, body = get("/trace/last")
	if code != 200 || !strings.Contains(body, `"request-bids"`) || !strings.Contains(body, `"dp-pricing"`) {
		t.Fatalf("/trace/last: %d\n%s", code, body)
	}

	if code, _, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}
	if code, _, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}

	// Unknown paths must 404, not fall through to some handler.
	if code, _, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path: %d, want 404", code)
	}
}

// TestTraceLogRing pins the last-8 retention and the /trace/last?n=k view:
// newest first, n unset = single most recent, bad n = 400.
func TestTraceLogRing(t *testing.T) {
	tl := NewTraceLog()
	for i := 0; i < 12; i++ {
		tl.Record(&SpanPayload{Name: "t" + strconv.Itoa(i)})
	}
	if p, _ := tl.Last(); p == nil || p.Name != "t11" {
		t.Fatalf("Last: %+v", p)
	}
	rec := tl.Recent(0)
	if len(rec) != 8 || rec[0].Name != "t11" || rec[7].Name != "t4" {
		t.Fatalf("ring retention: %d traces, first %s last %s", len(rec), rec[0].Name, rec[len(rec)-1].Name)
	}
	if got := tl.Recent(3); len(got) != 3 || got[2].Name != "t9" {
		t.Fatalf("Recent(3): %+v", got)
	}

	serve := func(path string) (int, string) {
		rw := httptest.NewRecorder()
		req := httptest.NewRequest("GET", path, nil)
		tl.ServeHTTP(rw, req)
		return rw.Code, rw.Body.String()
	}
	code, body := serve("/trace/last")
	if code != 200 || strings.Count(body, `"name"`) < 1 || strings.Contains(body, "t10") {
		t.Fatalf("default must serve only the newest: %d\n%s", code, body)
	}
	code, body = serve("/trace/last?n=3")
	if code != 200 {
		t.Fatalf("?n=3: %d", code)
	}
	for _, want := range []string{"t11", "t10", "t9"} {
		if !strings.Contains(body, want) {
			t.Fatalf("?n=3 missing %s:\n%s", want, body)
		}
	}
	if strings.Contains(body, "t8\"") {
		t.Fatalf("?n=3 served more than 3:\n%s", body)
	}
	if code, _ := serve("/trace/last?n=0"); code != 400 {
		t.Fatalf("n=0 should 400, got %d", code)
	}
	if code, _ := serve("/trace/last?n=x"); code != 400 {
		t.Fatalf("n=x should 400, got %d", code)
	}
}

// TestHandlerExtraEndpoints checks the variadic endpoint mounting used by
// the trading ledger's /ledger and /calibration.
func TestHandlerExtraEndpoints(t *testing.T) {
	hit := ""
	mk := func(name string) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			hit = name
			w.WriteHeader(200)
		})
	}
	h := Handler(nil, nil,
		Endpoint{Path: "/ledger", Handler: mk("ledger")},
		Endpoint{Path: "/calibration", Handler: mk("calibration")},
		Endpoint{Path: "/nil", Handler: nil})
	srv := httptest.NewServer(h)
	defer srv.Close()
	for _, path := range []string{"/ledger", "/calibration"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || hit != strings.TrimPrefix(path, "/") {
			t.Fatalf("%s: %d (hit=%q)", path, resp.StatusCode, hit)
		}
	}
	resp, err := srv.Client().Get(srv.URL + "/nil")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("nil-handler endpoint must stay unmounted: %d", resp.StatusCode)
	}
	// Without a metrics registry or trace log those paths 404 too.
	for _, path := range []string{"/metrics", "/trace/last"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Fatalf("%s with nil backends: %d", path, resp.StatusCode)
		}
	}
}

func TestTraceLogNilSafety(t *testing.T) {
	var tl *TraceLog
	tl.Record(&SpanPayload{Name: "x"})
	if p, _ := tl.Last(); p != nil {
		t.Fatal("nil trace log must stay empty")
	}
	live := NewTraceLog()
	live.Record(nil)
	if p, _ := live.Last(); p != nil {
		t.Fatal("nil payload must not be recorded")
	}
	live.Record(&SpanPayload{Name: "a"})
	live.Record(&SpanPayload{Name: "b"})
	p, at := live.Last()
	if p == nil || p.Name != "b" || at.IsZero() {
		t.Fatalf("last: %+v %v", p, at)
	}
}

// TestSnapshotDeterministic pins that Snapshot and Each render instruments in
// sorted name order regardless of registration order — scrapers and golden
// tests depend on a stable exposition order.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(names []string) *Metrics {
		m := NewMetrics()
		for _, n := range names {
			m.Counter(n).Inc()
		}
		m.Gauge("zz.gauge").Set(2)
		m.Histogram("aa.hist").Observe(time.Millisecond.Seconds())
		return m
	}
	a := build([]string{"c.one", "b.two", "a.three"})
	b := build([]string{"a.three", "c.one", "b.two"})
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("snapshot depends on registration order:\n%s\nvs\n%s", a.Snapshot(), b.Snapshot())
	}
	var order []string
	a.Each(func(name string, _ any) { order = append(order, name) })
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("Each not sorted: %v", order)
		}
	}
	var prom1, prom2 strings.Builder
	_ = a.WritePrometheus(&prom1)
	_ = b.WritePrometheus(&prom2)
	if prom1.String() != prom2.String() {
		t.Fatal("prometheus output depends on registration order")
	}
}

// /healthz is the readiness surface: the default mount answers
// {"ready":true} with 200, a custom status provider overrides the default,
// and a body reporting "ready":false flips the HTTP code to 503 so probes
// can gate on status alone.
func TestHealthEndpoint(t *testing.T) {
	// Default mount: no extra endpoint claims /healthz.
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ready":true`) {
		t.Fatalf("default /healthz: %d %q", resp.StatusCode, body)
	}

	// A status provider overrides the default and controls the code.
	ready := true
	srv2 := httptest.NewServer(Handler(nil, nil, HealthEndpoint(func() any {
		return map[string]any{"id": "corfu", "state": "active", "ready": ready}
	})))
	defer srv2.Close()
	resp, err = http.Get(srv2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"id":"corfu"`) {
		t.Fatalf("custom /healthz: %d %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type: %q", ct)
	}

	ready = false
	resp, err = http.Get(srv2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, `"ready":false`) {
		t.Fatalf("draining /healthz must be 503: %d %q", resp.StatusCode, body)
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
