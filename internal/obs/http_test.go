package obs

import (
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestPrometheusGolden pins the exact exposition text for counters and
// gauges, including name sanitization — the format third-party scrapers
// parse, so any change here is a breaking change.
func TestPrometheusGolden(t *testing.T) {
	m := NewMetrics()
	m.Counter("node.n1.rfbs").Add(7)
	m.Gauge("fault.breaker.n1-open").Set(1)
	m.Counter("buyer.hq.iterations").Add(3)

	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE buyer_hq_iterations counter",
		"buyer_hq_iterations 3",
		"# TYPE fault_breaker_n1_open gauge",
		"fault_breaker_n1_open 1",
		"# TYPE node_n1_rfbs counter",
		"node_n1_rfbs 7",
		"",
	}, "\n")
	if b.String() != want {
		t.Fatalf("prometheus text drifted:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestPrometheusHistogram checks the histogram series: cumulative buckets
// over the registry's exponential bounds, +Inf last, _sum and _count.
func TestPrometheusHistogram(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("buyer.hq.price_ms")
	h.Observe(0.0005) // bucket 0 (le=0.001)
	h.Observe(0.5)
	h.Observe(1e9) // beyond every finite bound → +Inf only

	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "# TYPE buyer_hq_price_ms histogram\n") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	lineRe := regexp.MustCompile(`^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? [0-9eE.+-]+|[a-zA-Z_:][a-zA-Z0-9_:]*(_sum|_count) [0-9eE.+-]+)$`)
	bucketRe := regexp.MustCompile(`^buyer_hq_price_ms_bucket\{le="([^"]+)"\} (\d+)$`)
	var bounds []string
	var counts []int64
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !lineRe.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
		if mm := bucketRe.FindStringSubmatch(line); mm != nil {
			bounds = append(bounds, mm[1])
			n, _ := strconv.ParseInt(mm[2], 10, 64)
			counts = append(counts, n)
		}
	}
	if len(bounds) != histBuckets {
		t.Fatalf("bucket lines: %d, want %d", len(bounds), histBuckets)
	}
	if bounds[0] != "0.001" || bounds[len(bounds)-1] != "+Inf" {
		t.Fatalf("bucket bounds: first %q last %q", bounds[0], bounds[len(bounds)-1])
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("buckets must be cumulative: %v", counts)
		}
	}
	if counts[0] != 1 {
		t.Fatalf("le=0.001 must hold the 0.0005 observation: %d", counts[0])
	}
	if counts[len(counts)-1] != 3 {
		t.Fatalf("+Inf bucket must hold every observation: %d", counts[len(counts)-1])
	}
	if !strings.Contains(out, "buyer_hq_price_ms_count 3") {
		t.Fatalf("missing _count:\n%s", out)
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"node.n0.rfbs":   "node_n0_rfbs",
		"net.a->b":       "net_a__b",
		"9lives":         "_9lives",
		"ok_name:colons": "ok_name:colons",
		"":               "_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	m := NewMetrics()
	m.Counter("node.n1.rfbs").Inc()
	tl := NewTraceLog()
	srv := httptest.NewServer(Handler(m, tl))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), b.String()
	}

	code, ctype, body := get("/metrics")
	if code != 200 || !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics: %d %q", code, ctype)
	}
	if !strings.Contains(body, "node_n1_rfbs 1") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	if code, _, _ := get("/trace/last"); code != 404 {
		t.Fatalf("/trace/last before any sample: %d, want 404", code)
	}
	tr := NewTracer()
	sp := tr.Start("corfu", "request-bids")
	sp.Child("dp-pricing").End()
	sp.End()
	tl.Record(sp.Payload())
	code, _, body = get("/trace/last")
	if code != 200 || !strings.Contains(body, `"request-bids"`) || !strings.Contains(body, `"dp-pricing"`) {
		t.Fatalf("/trace/last: %d\n%s", code, body)
	}

	if code, _, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}
	if code, _, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}

func TestTraceLogNilSafety(t *testing.T) {
	var tl *TraceLog
	tl.Record(&SpanPayload{Name: "x"})
	if p, _ := tl.Last(); p != nil {
		t.Fatal("nil trace log must stay empty")
	}
	live := NewTraceLog()
	live.Record(nil)
	if p, _ := live.Last(); p != nil {
		t.Fatal("nil payload must not be recorded")
	}
	live.Record(&SpanPayload{Name: "a"})
	live.Record(&SpanPayload{Name: "b"})
	p, at := live.Last()
	if p == nil || p.Name != "b" || at.IsZero() {
		t.Fatalf("last: %+v %v", p, at)
	}
}

// TestSnapshotDeterministic pins that Snapshot and Each render instruments in
// sorted name order regardless of registration order — scrapers and golden
// tests depend on a stable exposition order.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(names []string) *Metrics {
		m := NewMetrics()
		for _, n := range names {
			m.Counter(n).Inc()
		}
		m.Gauge("zz.gauge").Set(2)
		m.Histogram("aa.hist").Observe(time.Millisecond.Seconds())
		return m
	}
	a := build([]string{"c.one", "b.two", "a.three"})
	b := build([]string{"a.three", "c.one", "b.two"})
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("snapshot depends on registration order:\n%s\nvs\n%s", a.Snapshot(), b.Snapshot())
	}
	var order []string
	a.Each(func(name string, _ any) { order = append(order, name) })
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("Each not sorted: %v", order)
		}
	}
	var prom1, prom2 strings.Builder
	_ = a.WritePrometheus(&prom1)
	_ = b.WritePrometheus(&prom2)
	if prom1.String() != prom2.String() {
		t.Fatal("prometheus output depends on registration order")
	}
}
