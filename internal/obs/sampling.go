package obs

import (
	"math/rand"
	"sync"
	"time"
)

// SampleMode selects the head-sampling policy for distributed traces.
type SampleMode int

const (
	// SampleAlways traces every negotiation (the zero value, and the
	// behavior of a nil *Sampling).
	SampleAlways SampleMode = iota
	// SampleNever traces nothing: no trace data is recorded or shipped, and
	// message wire sizes are identical to a build without tracing.
	SampleNever
	// SampleRatio traces a seeded pseudo-random fraction Ratio of
	// negotiations.
	SampleRatio
)

// Sampling decides which negotiations become distributed traces. The head
// decision is made once per optimization by the buyer and carried on every
// message via TraceContext.Sampled. TailSlower adds tail sampling: trace
// data is then collected for every negotiation, but the buyer drops the
// finished trace unless the head decision said keep or the negotiation was
// at least TailSlower slow — catching exactly the outliers worth looking at.
//
// A single *Sampling is shared across optimizations (it owns the seeded rng
// state); nil means SampleAlways.
type Sampling struct {
	Mode  SampleMode
	Ratio float64 // fraction sampled when Mode == SampleRatio
	Seed  int64   // rng seed for SampleRatio (0 → 1), fixed for reproducibility
	// TailSlower, when > 0, keeps traces of negotiations at least this slow
	// even when head sampling said no.
	TailSlower time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// SampleHead draws the head decision for one negotiation.
func (s *Sampling) SampleHead() bool {
	if s == nil {
		return true
	}
	switch s.Mode {
	case SampleNever:
		return false
	case SampleRatio:
		s.mu.Lock()
		if s.rng == nil {
			seed := s.Seed
			if seed == 0 {
				seed = 1
			}
			s.rng = rand.New(rand.NewSource(seed))
		}
		v := s.rng.Float64()
		s.mu.Unlock()
		return v < s.Ratio
	default:
		return true
	}
}

// Collect reports whether trace data should be gathered on the wire for a
// negotiation with the given head decision — true when head-sampled, or
// whenever tail sampling might still want the trace.
func (s *Sampling) Collect(head bool) bool {
	if s == nil {
		return true
	}
	return head || s.TailSlower > 0
}

// Keep reports whether a finished negotiation's trace should be retained:
// head-sampled traces always, otherwise only tail-kept slow ones.
func (s *Sampling) Keep(head bool, wall time.Duration) bool {
	if s == nil || head {
		return true
	}
	return s.TailSlower > 0 && wall >= s.TailSlower
}
