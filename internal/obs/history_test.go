package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHistogramQuantileInterpolation pins that quantiles interpolate inside
// the bucket holding the rank instead of snapping to bucket upper bounds,
// and that single-valued buckets clamp to exact observed values.
func TestHistogramQuantileInterpolation(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(0.6) // all in bucket (0.512, 1.024]
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := h.Quantile(q); got != 0.6 {
			t.Fatalf("uniform histogram q=%g: got %g, want exactly 0.6", q, got)
		}
	}

	two := &Histogram{}
	for i := 0; i < 50; i++ {
		two.Observe(0.3) // bucket (0.256, 0.512]
	}
	for i := 0; i < 50; i++ {
		two.Observe(0.9) // bucket (0.512, 1.024]
	}
	p95 := two.Quantile(0.95)
	if p95 <= 0.512 || p95 >= 0.9 {
		t.Fatalf("p95 must interpolate inside (0.512, 0.9): got %g", p95)
	}
	p99 := two.Quantile(0.99)
	if p99 < p95 || p99 > 0.9 {
		t.Fatalf("p99 %g must be in [p95 %g, max 0.9]", p99, p95)
	}
	if p50 := two.Quantile(0.5); p50 < 0.3 || p50 > 0.512 {
		t.Fatalf("p50 must land in the first occupied bucket: got %g", p50)
	}
}

// TestSnapshotQuantileGolden pins the exact histogram Snapshot line —
// including the new p99 column — for a deterministic single observation.
func TestSnapshotQuantileGolden(t *testing.T) {
	m := NewMetrics()
	m.Histogram("buyer.hq.wall_ms").Observe(2.0)
	want := "buyer.hq.wall_ms                               count=1 sum=2.000 mean=2.000 p50=2.000 p95=2.000 p99=2.000 max=2.000\n"
	if got := m.Snapshot(); got != want {
		t.Fatalf("snapshot drifted:\n--- got ---\n%q\n--- want ---\n%q", got, want)
	}
}

// TestPrometheusQuantileGolden pins the _p50/_p95/_p99 companion gauges in
// the exposition text.
func TestPrometheusQuantileGolden(t *testing.T) {
	m := NewMetrics()
	m.Histogram("buyer.hq.wall_ms").Observe(2.0)
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE buyer_hq_wall_ms_p50 gauge\nbuyer_hq_wall_ms_p50 2\n",
		"# TYPE buyer_hq_wall_ms_p95 gauge\nbuyer_hq_wall_ms_p95 2\n",
		"# TYPE buyer_hq_wall_ms_p99 gauge\nbuyer_hq_wall_ms_p99 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTraceLogNCapacity(t *testing.T) {
	tl := NewTraceLogN(3)
	for i := 0; i < 10; i++ {
		tl.Record(&SpanPayload{Name: "t"})
	}
	if got := len(tl.Recent(0)); got != 3 {
		t.Fatalf("NewTraceLogN(3) retained %d", got)
	}
	if NewTraceLogN(0).Keep() != traceLogKeep {
		t.Fatal("n<1 must fall back to the default capacity")
	}
	if NewTraceLog().Keep() != traceLogKeep {
		t.Fatal("default capacity drifted")
	}
	var nilLog *TraceLog
	if nilLog.Keep() != 0 {
		t.Fatal("nil Keep")
	}
}

// TestHistoryWindows drives the sampler manually and checks counter deltas,
// gauge last-values, histogram window quantiles, and ring retention.
func TestHistoryWindows(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("buyer.hq.queries")
	g := m.Gauge("node.n1.rfb_queue_depth")
	hist := m.Histogram("buyer.hq.wall_ms")
	h := NewHistory(m, time.Second, 3)

	c.Add(5)
	g.Set(2)
	hist.Observe(10)
	h.Sample()

	c.Add(7)
	g.Set(9)
	h.Sample()

	wins := h.Windows(0)
	if len(wins) != 2 {
		t.Fatalf("windows: %d", len(wins))
	}
	newest, prev := wins[0], wins[1]
	if d, ok := newest.CounterDelta("buyer.hq.queries"); !ok || d != 7 {
		t.Fatalf("newest counter delta: %d %v", d, ok)
	}
	if d, _ := prev.CounterDelta("buyer.hq.queries"); d != 5 {
		t.Fatalf("first window must hold activity since start: %d", d)
	}
	if v, ok := newest.GaugeValue("node.n1.rfb_queue_depth"); !ok || v != 9 {
		t.Fatalf("gauge last-value: %g %v", v, ok)
	}
	hw, ok := newest.Hist("buyer.hq.wall_ms")
	if !ok || hw.Count != 0 {
		t.Fatalf("idle histogram window must show zero delta: %+v", hw)
	}
	hw, _ = prev.Hist("buyer.hq.wall_ms")
	if hw.Count != 1 || hw.P95 != 10 {
		t.Fatalf("windowed quantiles must reflect only that window: %+v", hw)
	}

	// Ring retention: 5 total samples on keep=3 leaves the newest three.
	h.Sample()
	h.Sample()
	h.Sample()
	wins = h.Windows(0)
	if len(wins) != 3 || wins[0].Seq != 4 || wins[2].Seq != 2 {
		t.Fatalf("ring retention: %+v", wins)
	}
	if h.Len() != 3 {
		t.Fatalf("Len: %d", h.Len())
	}
	if got := h.Windows(1); len(got) != 1 || got[0].Seq != 4 {
		t.Fatalf("Windows(1): %+v", got)
	}
}

// TestHistoryNewInstrument checks the tracker table refreshes when the
// registry grows between samples.
func TestHistoryNewInstrument(t *testing.T) {
	m := NewMetrics()
	m.Counter("a").Inc()
	h := NewHistory(m, time.Second, 4)
	h.Sample()
	m.Counter("b").Add(3)
	h.Sample()
	newest := h.Windows(1)[0]
	if d, ok := newest.CounterDelta("b"); !ok || d != 3 {
		t.Fatalf("late-registered counter missing from window: %d %v", d, ok)
	}
}

// TestHistoryIdleSampleZeroAlloc pins that closing windows over a stable,
// idle registry allocates nothing — the sampler must be free to run forever
// on production nodes.
func TestHistoryIdleSampleZeroAlloc(t *testing.T) {
	m := NewMetrics()
	m.Counter("buyer.hq.queries").Add(2)
	m.Gauge("node.n1.load").Set(1)
	m.Histogram("buyer.hq.wall_ms").Observe(3)
	h := NewHistory(m, time.Second, 4)
	h.Sample()
	h.Sample() // warm every slot path
	h.Sample()
	h.Sample()
	h.Sample() // lap the ring so slot reuse is exercised
	if avg := testing.AllocsPerRun(100, h.Sample); avg != 0 {
		t.Fatalf("idle Sample allocates %v per run, want 0", avg)
	}
}

// TestHistoryBusySampleZeroAlloc: even with fresh observations each window,
// sampling itself stays allocation-free once the instrument set is stable.
func TestHistoryBusySampleZeroAlloc(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("q")
	hist := m.Histogram("w")
	h := NewHistory(m, time.Second, 4)
	hist.Observe(1)
	for i := 0; i < 6; i++ {
		h.Sample()
	}
	if avg := testing.AllocsPerRun(100, func() {
		c.Inc()
		hist.Observe(2.5)
		h.Sample()
	}); avg != 0 {
		t.Fatalf("busy Sample allocates %v per run, want 0", avg)
	}
}

func TestHistoryNil(t *testing.T) {
	var h *History
	h.Sample()
	h.Start()
	h.Stop()
	h.OnWindow(func(*Window) {})
	if h.Windows(0) != nil || h.Len() != 0 || h.Window() != 0 {
		t.Fatal("nil history must be empty")
	}
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics/history", nil))
	if rw.Code != 404 {
		t.Fatalf("nil history must 404: %d", rw.Code)
	}
}

func TestHistoryOnWindow(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("x")
	h := NewHistory(m, time.Second, 2)
	var seen []int64
	h.OnWindow(func(w *Window) {
		d, _ := w.CounterDelta("x")
		seen = append(seen, d)
	})
	c.Add(4)
	h.Sample()
	c.Add(1)
	h.Sample()
	if len(seen) != 2 || seen[0] != 4 || seen[1] != 1 {
		t.Fatalf("OnWindow deltas: %v", seen)
	}
}

func TestHistoryServeHTTP(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("buyer.hq.queries")
	h := NewHistory(m, 250*time.Millisecond, 8)

	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics/history", nil))
	if rw.Code != 404 {
		t.Fatalf("before any window: %d, want 404", rw.Code)
	}

	c.Add(3)
	h.Sample()
	c.Add(2)
	h.Sample()

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics/history", nil))
	if rw.Code != 200 || !strings.Contains(rw.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("history: %d %q", rw.Code, rw.Header().Get("Content-Type"))
	}
	var payload struct {
		WindowMS int64    `json:"window_ms"`
		Keep     int      `json:"keep"`
		Taken    int64    `json:"windows_taken"`
		Windows  []Window `json:"windows"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &payload); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rw.Body.String())
	}
	if payload.WindowMS != 250 || payload.Keep != 8 || payload.Taken != 2 || len(payload.Windows) != 2 {
		t.Fatalf("payload: %+v", payload)
	}
	if payload.Windows[0].Seq != 1 {
		t.Fatalf("newest first: %+v", payload.Windows[0])
	}
	if d, ok := payload.Windows[0].CounterDelta("buyer.hq.queries"); !ok || d != 2 {
		t.Fatalf("counter delta through JSON: %d %v", d, ok)
	}

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics/history?n=1", nil))
	if rw.Code != 200 || strings.Count(rw.Body.String(), `"seq"`) != 1 {
		t.Fatalf("?n=1: %d\n%s", rw.Code, rw.Body.String())
	}
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics/history?n=bogus", nil))
	if rw.Code != 400 {
		t.Fatalf("bad n: %d", rw.Code)
	}
}

// TestHistoryStartStop runs the real sampler goroutine briefly.
func TestHistoryStartStop(t *testing.T) {
	m := NewMetrics()
	m.Counter("x").Inc()
	h := NewHistory(m, 5*time.Millisecond, 16)
	h.Start()
	h.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for h.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	h.Stop()
	h.Stop() // idempotent
	if h.Len() < 2 {
		t.Fatalf("sampler closed %d windows, want >= 2", h.Len())
	}
	n := h.Len()
	time.Sleep(15 * time.Millisecond)
	if h.Len() != n {
		t.Fatal("sampler kept running after Stop")
	}

	// Stop without Start must not hang.
	h2 := NewHistory(m, time.Hour, 2)
	done := make(chan struct{})
	go func() { h2.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop without Start hung")
	}
}
