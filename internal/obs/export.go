package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// jsonlSpan is the flat JSONL record: one line per span, parents before
// children, with Path giving the slash-joined ancestry so trees can be
// rebuilt offline.
type jsonlSpan struct {
	Trace      int               `json:"trace"`
	Path       string            `json:"path"`
	Name       string            `json:"name"`
	Source     string            `json:"source,omitempty"`
	StartUS    int64             `json:"start_us"`
	DurUS      int64             `json:"dur_us"`
	Unfinished bool              `json:"unfinished,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// WriteJSONL writes every recorded span as one JSON object per line. Spans
// appear in depth-first order, each carrying its root index ("trace") and
// full path, so the stream is both grep-able and machine-rebuildable.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, root := range t.Roots() {
		if err := writeJSONLSpan(enc, t.epoch, i, "", root); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeJSONLSpan(enc *json.Encoder, epoch time.Time, trace int, parentPath string, s *Span) error {
	path := s.Name()
	if parentPath != "" {
		path = parentPath + "/" + path
	}
	rec := jsonlSpan{
		Trace:      trace,
		Path:       path,
		Name:       s.Name(),
		Source:     s.Source(),
		StartUS:    s.start.Sub(epoch).Microseconds(),
		DurUS:      s.Duration().Microseconds(),
		Unfinished: !s.Ended(),
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		rec.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			rec.Attrs[a.Key] = a.Val
		}
	}
	if err := enc.Encode(rec); err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := writeJSONLSpan(enc, epoch, trace, path, c); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event format ("X" = complete
// event with explicit duration, "M" = metadata). Timestamps and durations
// are in microseconds. See
// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	TS   int64             `json:"ts,omitempty"`
	Dur  int64             `json:"dur,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the recorded spans as Chrome trace_event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev. Each distinct
// span source (node id) becomes its own track (tid), named via thread_name
// metadata, so buyer and seller activity line up on a shared timeline.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	tids := map[string]int{}
	tidOf := func(source string) int {
		if id, ok := tids[source]; ok {
			return id
		}
		id := len(tids) + 1
		tids[source] = id
		return id
	}
	events := []chromeEvent{} // non-nil: an empty trace encodes as [], not null
	var walk func(s *Span)
	walk = func(s *Span) {
		ev := chromeEvent{
			Name: s.Name(),
			Ph:   "X",
			PID:  1,
			TID:  tidOf(s.Source()),
			TS:   s.start.Sub(t.epoch).Microseconds(),
			Dur:  s.Duration().Microseconds(),
		}
		if ev.Dur <= 0 {
			ev.Dur = 1 // zero-length events are dropped by some viewers
		}
		attrs := s.Attrs()
		if !s.Ended() {
			attrs = append(attrs, Attr{Key: "unfinished", Val: "true"})
		}
		if len(attrs) > 0 {
			ev.Args = make(map[string]string, len(attrs))
			for _, a := range attrs {
				ev.Args[a.Key] = a.Val
			}
		}
		events = append(events, ev)
		for _, c := range s.Children() {
			walk(c)
		}
	}
	for _, root := range t.Roots() {
		walk(root)
	}
	// Name the tracks after their sources (metadata events carry no ts).
	for source, tid := range tids {
		name := source
		if name == "" {
			name = "(unattributed)"
		}
		events = append(events, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  1,
			TID:  tid,
			Args: map[string]string{"name": name},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WritePayloadJSONL writes a shipped span subtree in the same flat JSONL
// shape as WriteJSONL. Timestamps are relative to the payload root's start
// (the receiver has no tracer epoch to offset against).
func WritePayloadJSONL(w io.Writer, p *SpanPayload) error {
	if p == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := writePayloadSpan(enc, p.StartUS, "", p); err != nil {
		return err
	}
	return bw.Flush()
}

func writePayloadSpan(enc *json.Encoder, epochUS int64, parentPath string, p *SpanPayload) error {
	path := p.Name
	if parentPath != "" {
		path = parentPath + "/" + path
	}
	rec := jsonlSpan{
		Path:       path,
		Name:       p.Name,
		Source:     p.Source,
		StartUS:    p.StartUS - epochUS,
		Unfinished: p.Unfinished,
	}
	if p.EndUS > p.StartUS {
		rec.DurUS = p.EndUS - p.StartUS
	}
	if len(p.Attrs) > 0 {
		rec.Attrs = make(map[string]string, len(p.Attrs))
		for _, a := range p.Attrs {
			rec.Attrs[a.Key] = a.Val
		}
	}
	if err := enc.Encode(rec); err != nil {
		return err
	}
	for _, c := range p.Children {
		if err := writePayloadSpan(enc, epochUS, path, c); err != nil {
			return err
		}
	}
	return nil
}

// RenderText renders the span forest as an indented tree with durations and
// attributes — the human-readable counterpart of the JSON exports.
func (t *Tracer) RenderText() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for i, root := range t.Roots() {
		if i > 0 {
			b.WriteByte('\n')
		}
		renderSpan(&b, root, 0)
	}
	return b.String()
}

func renderSpan(b *strings.Builder, s *Span, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s", s.Name())
	if src := s.Source(); src != "" {
		fmt.Fprintf(b, " @%s", src)
	}
	fmt.Fprintf(b, " (%.3fms)", float64(s.Duration().Microseconds())/1000)
	if !s.Ended() {
		b.WriteString(" unfinished=true")
	}
	for _, a := range s.Attrs() {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Val)
	}
	b.WriteByte('\n')
	for _, c := range s.Children() {
		renderSpan(b, c, depth+1)
	}
}
