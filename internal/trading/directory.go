package trading

import (
	"sort"
	"sync"
	"time"
)

// This file is the federation's membership view: a per-peer lifecycle state
// machine plus a directory that resolves which peers a negotiation should
// even talk to. The lifecycle mirrors the node side (a node announces it is
// draining by rejecting new RFBs with ErrDraining); the directory is the
// buyer-side cache of those announcements, folded together with breaker
// state and last-seen time into one health-gated peer view. Autonomy cuts
// both ways: nodes join and leave on their own schedule, and buyers must
// keep trading through the churn without hanging on peers that told them
// "not now".

// NodeState is a federation member's lifecycle position.
type NodeState int

// The lifecycle states. A node moves Active → Draining when it wants out
// (finishing in-flight work, accepting nothing new), Draining → Left once
// quiesced, and Draining → Active if the drain is cancelled. Left is
// terminal for a node identity; rejoining is a fresh AddNode.
const (
	StateActive NodeState = iota
	StateDraining
	StateLeft
)

func (s NodeState) String() string {
	switch s {
	case StateDraining:
		return "draining"
	case StateLeft:
		return "left"
	default:
		return "active"
	}
}

// PeerHealth is one directory entry's exported view.
type PeerHealth struct {
	ID       string    `json:"id"`
	State    string    `json:"state"`
	Breaker  string    `json:"breaker,omitempty"`
	LastSeen time.Time `json:"last_seen,omitempty"`
}

type dirEntry struct {
	state NodeState
	seen  time.Time
}

// Directory tracks every known peer's lifecycle state and last successful
// contact, and — combined with the breaker registry — answers the question a
// buyer asks at the top of every negotiation: which peers are worth sending
// an RFB to right now? All methods are safe for concurrent use and nil-safe,
// so an ungated federation (nil directory) behaves exactly as before.
type Directory struct {
	// Breakers, when set, folds circuit state into Eligible and Snapshot:
	// a peer with an open breaker is as unreachable as a draining one.
	Breakers *BreakerSet

	now func() time.Time // injectable clock for tests; nil = time.Now

	mu    sync.RWMutex
	peers map[string]*dirEntry
}

// NewDirectory returns an empty directory sharing the given breaker registry
// (which may be nil).
func NewDirectory(breakers *BreakerSet) *Directory {
	return &Directory{Breakers: breakers, peers: map[string]*dirEntry{}}
}

func (d *Directory) clock() time.Time {
	if d.now != nil {
		return d.now()
	}
	return time.Now()
}

func (d *Directory) entry(id string) *dirEntry {
	e := d.peers[id]
	if e == nil {
		e = &dirEntry{state: StateActive}
		d.peers[id] = e
	}
	return e
}

// MarkState records a peer's lifecycle state (e.g. on AddNode, on a drain
// command, or when a call came back ErrDraining). Nil-safe.
func (d *Directory) MarkState(id string, s NodeState) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entry(id).state = s
}

// Seen records a successful contact with a peer, marking it Active again if
// it had been observed draining (a node that answers new RFBs has undrained).
// Nil-safe.
func (d *Directory) Seen(id string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.entry(id)
	e.seen = d.clock()
	if e.state == StateDraining {
		e.state = StateActive
	}
}

// Forget drops a peer from the directory entirely (RemoveNode). Nil-safe.
func (d *Directory) Forget(id string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.peers, id)
}

// State reports a peer's recorded lifecycle state; unknown peers are Active
// (the directory is an exclusion list, not an allow list — a peer nobody has
// complained about is worth an RFB). Nil-safe.
func (d *Directory) State(id string) NodeState {
	if d == nil {
		return StateActive
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if e := d.peers[id]; e != nil {
		return e.state
	}
	return StateActive
}

// Eligible reports whether a negotiation should fan out to the peer: its
// lifecycle state is Active and its breaker (if tracked) is not open. This
// is the health gate buyers apply before spending a round-trip. Nil-safe: a
// nil directory gates nothing.
func (d *Directory) Eligible(id string) bool {
	if d == nil {
		return true
	}
	if d.State(id) != StateActive {
		return false
	}
	if d.Breakers != nil {
		if b := d.Breakers.For(id); b.State() == BreakerOpen {
			return false
		}
	}
	return true
}

// Snapshot returns every tracked peer's health, sorted by id, for /healthz
// and operator tooling. Nil-safe.
func (d *Directory) Snapshot() []PeerHealth {
	if d == nil {
		return nil
	}
	d.mu.RLock()
	out := make([]PeerHealth, 0, len(d.peers))
	for id, e := range d.peers {
		out = append(out, PeerHealth{ID: id, State: e.state.String(), LastSeen: e.seen})
	}
	d.mu.RUnlock()
	if d.Breakers != nil {
		states := d.Breakers.States()
		for i := range out {
			out[i].Breaker = states[out[i].ID]
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
