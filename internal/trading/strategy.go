package trading

import (
	"sync"

	"qtrade/internal/cost"
)

// SellerStrategy decides the asked price of an offer from its true valuation
// and reacts to competition, per the strategy-module role of Figure 1.
// Implementations must be safe for concurrent use (a seller negotiates with
// many buyers at once).
type SellerStrategy interface {
	// Price returns the asked price for an answer whose truthful valuation
	// (under the federation weighting) is truth.
	Price(qid string, truth float64) float64
	// Improve reacts to an improvement round: given the current ask, the
	// truthful valuation and the best competing price (or the buyer's
	// bargaining target), it returns a new ask and whether the offer is
	// re-submitted.
	Improve(qid string, current, truth, competing float64) (float64, bool)
	// Observe records the outcome of a negotiation for adaptation.
	Observe(qid string, won bool)
}

// Cooperative is the truthful strategy: asked price equals the true
// valuation, the behaviour of nodes that jointly minimize federation cost
// (the paper's cooperative setting, e.g. offices of one company).
type Cooperative struct{}

// Price implements SellerStrategy.
func (Cooperative) Price(_ string, truth float64) float64 { return truth }

// Improve implements SellerStrategy: a truthful ask cannot improve.
func (Cooperative) Improve(_ string, current, _, _ float64) (float64, bool) {
	return current, false
}

// Observe implements SellerStrategy.
func (Cooperative) Observe(string, bool) {}

// Competitive is the self-interested strategy: it asks the true valuation
// plus an adaptive margin, decays the margin after losses, grows it after
// wins, and undercuts competitors in improvement rounds while the margin
// stays above MinMargin. This is the classic adaptive markup used in
// automated trading (cf. the competitive equilibria literature the paper
// cites).
type Competitive struct {
	InitMargin float64 // e.g. 0.3
	MinMargin  float64 // e.g. 0.02
	MaxMargin  float64 // e.g. 1.0
	Decay      float64 // multiplicative margin decay on loss, e.g. 0.8
	Growth     float64 // multiplicative margin growth on win, e.g. 1.05

	mu     sync.Mutex
	margin float64
	inited bool
}

// NewCompetitive returns a Competitive strategy with the standard constants.
func NewCompetitive() *Competitive {
	return &Competitive{InitMargin: 0.3, MinMargin: 0.02, MaxMargin: 1.0, Decay: 0.8, Growth: 1.05}
}

func (c *Competitive) currentMargin() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.inited {
		c.margin = c.InitMargin
		c.inited = true
	}
	return c.margin
}

// Price implements SellerStrategy.
func (c *Competitive) Price(_ string, truth float64) float64 {
	return truth * (1 + c.currentMargin())
}

// Improve implements SellerStrategy: undercut the best competing price while
// staying above the minimum margin.
func (c *Competitive) Improve(_ string, current, truth, competing float64) (float64, bool) {
	floor := truth * (1 + c.MinMargin)
	if competing <= 0 || competing <= floor || current <= competing {
		return current, false
	}
	ask := competing * 0.95
	if ask < floor {
		ask = floor
	}
	if ask >= current {
		return current, false
	}
	return ask, true
}

// Observe implements SellerStrategy.
func (c *Competitive) Observe(_ string, won bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.inited {
		c.margin = c.InitMargin
		c.inited = true
	}
	if won {
		c.margin *= c.Growth
		if c.margin > c.MaxMargin {
			c.margin = c.MaxMargin
		}
	} else {
		c.margin *= c.Decay
		if c.margin < c.MinMargin {
			c.margin = c.MinMargin
		}
	}
}

// Margin reports the current adaptive margin (for experiments).
func (c *Competitive) Margin() float64 { return c.currentMargin() }

// LoadAware wraps another strategy and scales prices by the node's current
// load factor, so busy sellers price themselves out of further work.
type LoadAware struct {
	Inner SellerStrategy
	Load  func() float64 // current load in [0, ∞); 0 = idle
}

// Price implements SellerStrategy.
func (l *LoadAware) Price(qid string, truth float64) float64 {
	return l.Inner.Price(qid, truth) * (1 + l.load())
}

// Improve implements SellerStrategy.
func (l *LoadAware) Improve(qid string, current, truth, competing float64) (float64, bool) {
	return l.Inner.Improve(qid, current, truth*(1+l.load()), competing)
}

// Observe implements SellerStrategy.
func (l *LoadAware) Observe(qid string, won bool) { l.Inner.Observe(qid, won) }

func (l *LoadAware) load() float64 {
	if l.Load == nil {
		return 0
	}
	f := l.Load()
	if f < 0 {
		return 0
	}
	return f
}

// BuyerStrategy produces the buyer's strategic value estimates for the
// queries it asks for (step B1) and its bargaining counter-offers.
type BuyerStrategy interface {
	// Estimate returns the value to attach to a query request, given the
	// best price seen for it so far (0 when never offered).
	Estimate(qid string, bestSeen float64) float64
	// CounterOffer returns the bargaining target given the best standing
	// price.
	CounterOffer(qid string, best float64) float64
}

// AnchoredBuyer estimates query values by anchoring on the best price seen
// and discounting it, pressuring sellers downward round over round.
type AnchoredBuyer struct {
	Discount float64 // e.g. 0.9
}

// Estimate implements BuyerStrategy.
func (b AnchoredBuyer) Estimate(_ string, bestSeen float64) float64 {
	if bestSeen <= 0 {
		return 0
	}
	return bestSeen * b.disc()
}

// CounterOffer implements BuyerStrategy.
func (b AnchoredBuyer) CounterOffer(_ string, best float64) float64 {
	return best * b.disc()
}

func (b AnchoredBuyer) disc() float64 {
	if b.Discount <= 0 || b.Discount >= 1 {
		return 0.9
	}
	return b.Discount
}

// TruthScore computes the truthful valuation of an offer's properties under
// the federation weights; the seller strategies mark up from this value.
func TruthScore(w cost.Weights, v cost.Valuation) float64 { return w.Score(v) }
