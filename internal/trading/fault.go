package trading

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"qtrade/internal/obs"
)

// This file is the buyer-side fault-tolerance vocabulary: transient-error
// classification, per-peer circuit breakers, and the FaultPolicy that guards
// every negotiation call with a timeout, bounded retry-with-backoff, and a
// breaker check. Autonomy means sellers may be slow, flaky or gone; the
// policy turns each of those into a bounded, observable failure instead of a
// hung negotiation. Everything here is strictly opt-in: a nil *FaultPolicy
// reproduces the unguarded behaviour exactly.

// ErrCallTimeout marks a peer call that exceeded the policy's CallTimeout.
var ErrCallTimeout = errors.New("trading: call timed out")

// ErrBreakerOpen marks a call rejected because the peer's circuit breaker is
// open (the peer failed repeatedly and its cooldown has not elapsed).
var ErrBreakerOpen = errors.New("trading: circuit breaker open")

// ErrDraining marks a call rejected because the peer is draining out of the
// federation: it finishes in-flight work but accepts no new negotiations.
// Like an open breaker it is not worth retrying — the node will not change
// its mind within a negotiation round — but it is transient in the fleet
// sense: the peer is healthy and may return (or a replica can serve instead).
var ErrDraining = errors.New("trading: node draining")

// ErrPeerCrashed marks a peer that went down mid-negotiation (e.g. between
// an award and the execution fetch). The crash is transient from the buyer's
// perspective: an equivalent standing offer or a re-optimization can absorb
// it even though this peer is gone.
var ErrPeerCrashed = errors.New("trading: peer crashed")

// FailureReason classifies a failed peer call for recovery audit trails:
// "drain", "crash", "timeout", "breaker", or "error" for anything else.
// Typed sentinels are preferred; string sniffing keeps the classification
// working across net/rpc boundaries that flatten errors to text.
func FailureReason(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrDraining):
		return "drain"
	case errors.Is(err, ErrPeerCrashed):
		return "crash"
	case errors.Is(err, ErrCallTimeout):
		return "timeout"
	case errors.Is(err, ErrBreakerOpen):
		return "breaker"
	}
	switch msg := err.Error(); {
	case strings.Contains(msg, "draining"):
		return "drain"
	case strings.Contains(msg, "crashed"):
		return "crash"
	case strings.Contains(msg, "timed out"):
		return "timeout"
	default:
		return "error"
	}
}

// transientErr wraps an error that is worth retrying (dropped message,
// timeout, flapping node). Hard failures — unknown nodes, crashed sellers,
// malformed queries — stay non-transient so retries are not wasted on them.
type transientErr struct{ err error }

func (e *transientErr) Error() string   { return e.err.Error() }
func (e *transientErr) Unwrap() error   { return e.err }
func (e *transientErr) Transient() bool { return true }

// MarkTransient tags err as transient (retryable). Nil stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err (or anything it wraps) is retryable.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// BreakerState is a circuit breaker's position.
type BreakerState int

// The breaker states. The numeric values double as the gauge encoding
// exposed through metrics ("fault.breaker.<peer>"): 0 closed, 1 half-open,
// 2 open.
const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig parameterizes one circuit breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker (0 = 5).
	Threshold int
	// Cooldown is how long an open breaker rejects calls before allowing
	// half-open probes (0 = 500ms).
	Cooldown time.Duration
	// HalfOpenProbes is the number of consecutive successful probes that
	// close a half-open breaker (0 = 1).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// Breaker is a per-peer circuit breaker: closed while the peer behaves, open
// after Threshold consecutive failures (rejecting calls without touching the
// network), half-open after Cooldown to let probe calls test the peer again.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for tests; nil = time.Now

	state *obs.Gauge   // last state transition, 0/1/2 (nil-safe)
	opens *obs.Counter // closed→open transitions (nil-safe)

	mu        sync.Mutex
	st        BreakerState
	failures  int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	openedAt  time.Time
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

// Allow reports whether a call may proceed, transitioning open→half-open
// when the cooldown has elapsed.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.st == BreakerOpen && b.clock().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.st = BreakerHalfOpen
		b.successes = 0
		b.state.Set(float64(BreakerHalfOpen))
	}
	return b.st != BreakerOpen
}

// OnSuccess records a successful call.
func (b *Breaker) OnSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.st {
	case BreakerHalfOpen:
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			b.st = BreakerClosed
			b.failures = 0
			b.state.Set(float64(BreakerClosed))
		}
	default:
		b.failures = 0
	}
}

// OnFailure records a failed call, opening the breaker when the consecutive
// failure threshold is reached (or immediately from half-open: a failed
// probe means the peer is still sick).
func (b *Breaker) OnFailure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.st {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.open()
		}
	}
}

// open transitions to the open state; callers hold b.mu.
func (b *Breaker) open() {
	b.st = BreakerOpen
	b.openedAt = b.clock()
	b.failures = 0
	b.state.Set(float64(BreakerOpen))
	b.opens.Inc()
}

// State returns the breaker's position (transitioning open→half-open when
// the cooldown has elapsed, like Allow).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.st == BreakerOpen && b.clock().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.st = BreakerHalfOpen
		b.successes = 0
		b.state.Set(float64(BreakerHalfOpen))
	}
	return b.st
}

// BreakerSet is the per-peer breaker registry shared by everything that
// talks to sellers — the buyer loop, subcontracting sellers and the RPC
// transport — so repeated failures seen anywhere open the peer's one shared
// breaker.
type BreakerSet struct {
	cfg     BreakerConfig
	metrics *obs.Metrics

	mu       sync.Mutex
	breakers map[string]*Breaker
}

// NewBreakerSet returns an empty registry. metrics may be nil; when set,
// each peer's breaker exports its state as the gauge "fault.breaker.<peer>"
// (0 closed, 1 half-open, 2 open) and open transitions count into
// "fault.breaker_opens".
func NewBreakerSet(cfg BreakerConfig, metrics *obs.Metrics) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), metrics: metrics, breakers: map[string]*Breaker{}}
}

// For returns the breaker for one peer, creating it on first use. Nil-safe:
// a nil set hands out nil breakers (which allow everything).
func (s *BreakerSet) For(id string) *Breaker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[id]
	if b == nil {
		b = NewBreaker(s.cfg)
		b.state = s.metrics.Gauge("fault.breaker." + id)
		b.opens = s.metrics.Counter("fault.breaker_opens")
		s.breakers[id] = b
	}
	return b
}

// States reports every registered peer breaker's position ("closed",
// "half-open", "open") keyed by peer id, for health exposition. Nil-safe: a
// nil set reports nothing.
func (s *BreakerSet) States() map[string]string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	snap := make(map[string]*Breaker, len(s.breakers))
	for id, b := range s.breakers {
		snap[id] = b
	}
	s.mu.Unlock()
	out := make(map[string]string, len(snap))
	for id, b := range snap {
		out[id] = b.State().String()
	}
	return out
}

// FaultPolicy bounds every guarded peer call: a per-call timeout, bounded
// retry-with-backoff for transient errors, a per-peer circuit breaker check,
// and a per-round deadline for the negotiation fan-out (stragglers are cut
// off and counted; the offers that arrived are used). The zero value guards
// nothing extra; a nil policy is valid everywhere and means "unguarded".
type FaultPolicy struct {
	// CallTimeout bounds one peer call (0 = no timeout).
	CallTimeout time.Duration
	// RoundTimeout bounds one negotiation round's fan-out; peers that have
	// not answered by then are stragglers (0 = wait for all).
	RoundTimeout time.Duration
	// MaxRetries is how many times a transient failure is retried (0 = no
	// retries).
	MaxRetries int
	// Backoff is the first retry's delay, doubling per retry (0 = 2ms).
	Backoff time.Duration
	// Breakers, when set, short-circuits calls to peers that keep failing.
	Breakers *BreakerSet
	// Metrics, when set, receives the policy counters: fault.call_timeouts,
	// fault.retries, fault.stragglers, fault.breaker_rejects,
	// fault.rounds_deadline_cut, fault.drain_rejects.
	Metrics *obs.Metrics

	once sync.Once
	inst faultInst
}

type faultInst struct {
	timeouts       *obs.Counter
	retries        *obs.Counter
	stragglers     *obs.Counter
	breakerRejects *obs.Counter
	roundCuts      *obs.Counter
	drainRejects   *obs.Counter
}

// obs resolves the policy's instruments once (all nil-safe).
func (p *FaultPolicy) obs() *faultInst {
	p.once.Do(func() {
		p.inst = faultInst{
			timeouts:       p.Metrics.Counter("fault.call_timeouts"),
			retries:        p.Metrics.Counter("fault.retries"),
			stragglers:     p.Metrics.Counter("fault.stragglers"),
			breakerRejects: p.Metrics.Counter("fault.breaker_rejects"),
			roundCuts:      p.Metrics.Counter("fault.rounds_deadline_cut"),
			drainRejects:   p.Metrics.Counter("fault.drain_rejects"),
		}
	})
	return &p.inst
}

// backoff returns the delay before retry attempt (attempt counts from 0).
func (p *FaultPolicy) backoff(attempt int) time.Duration {
	d := p.Backoff
	if d <= 0 {
		d = 2 * time.Millisecond
	}
	return d << uint(attempt)
}

// guard runs one peer call under the policy: breaker check, per-call
// timeout, and bounded retry-with-backoff on transient errors. A nil policy
// runs fn directly.
func guard[T any](p *FaultPolicy, id string, fn func() (T, error)) (T, error) {
	var zero T
	if p == nil {
		return fn()
	}
	br := p.Breakers.For(id)
	var err error
	for attempt := 0; ; attempt++ {
		if !br.Allow() {
			p.obs().breakerRejects.Inc()
			return zero, fmt.Errorf("trading: peer %s: %w", id, ErrBreakerOpen)
		}
		var out T
		out, err = callWithTimeout(p, id, fn)
		if err == nil {
			br.OnSuccess()
			return out, nil
		}
		if FailureReason(err) == "drain" {
			// A draining peer answered deliberately: it is healthy, just
			// leaving. Retries cannot change its mind and the breaker must
			// not open (the node may undrain), so skip it immediately —
			// the same no-retry-burn shape as an open breaker. Classified
			// via FailureReason rather than errors.Is so drain rejects
			// flattened to text by net/rpc take the same short-circuit.
			p.obs().drainRejects.Inc()
			return zero, err
		}
		br.OnFailure()
		if attempt >= p.MaxRetries || !IsTransient(err) {
			return zero, err
		}
		p.obs().retries.Inc()
		time.Sleep(p.backoff(attempt))
	}
}

// callWithTimeout runs fn, bounding it by CallTimeout when set. A timed-out
// call's goroutine is abandoned (its late result is discarded through the
// buffered channel) and the timeout surfaces as a transient ErrCallTimeout.
func callWithTimeout[T any](p *FaultPolicy, id string, fn func() (T, error)) (T, error) {
	if p.CallTimeout <= 0 {
		return fn()
	}
	type reply struct {
		out T
		err error
	}
	ch := make(chan reply, 1)
	go func() {
		out, err := fn()
		ch <- reply{out, err}
	}()
	t := time.NewTimer(p.CallTimeout)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.out, r.err
	case <-t.C:
		p.obs().timeouts.Inc()
		var zero T
		return zero, MarkTransient(fmt.Errorf("trading: peer %s: %w", id, ErrCallTimeout))
	}
}

// Call guards a plain error-returning exchange (award notifications) with
// the same breaker/timeout/retry engine as peer calls. Nil-safe. fn must not
// write captured variables: a timed-out call's goroutine keeps running and
// would race the caller — use GuardCall for exchanges that return a value.
func (p *FaultPolicy) Call(id string, fn func() error) error {
	if p == nil {
		return fn()
	}
	_, err := guard(p, id, func() (struct{}, error) { return struct{}{}, fn() })
	return err
}

// GuardCall guards one value-returning exchange (e.g. an execution fetch)
// under the policy: breaker check, per-call timeout, bounded transient
// retries. The result travels through the guard's channel, so a timed-out
// call's late result is discarded safely. A nil policy runs fn directly.
func GuardCall[T any](p *FaultPolicy, id string, fn func() (T, error)) (T, error) {
	return guard(p, id, fn)
}

// Wrap returns peer guarded by the policy. A nil policy returns peer
// unchanged, so callers can wrap unconditionally.
func (p *FaultPolicy) Wrap(id string, peer Peer) Peer {
	if p == nil {
		return peer
	}
	return GuardedPeer{ID: id, Peer: peer, Policy: p}
}

// GuardedPeer is a Peer whose calls run under a FaultPolicy.
type GuardedPeer struct {
	ID     string
	Peer   Peer
	Policy *FaultPolicy
}

// RequestBids implements Peer.
func (g GuardedPeer) RequestBids(rfb RFB) (BidReply, error) {
	return guard(g.Policy, g.ID, func() (BidReply, error) { return g.Peer.RequestBids(rfb) })
}

// ImproveBids implements Peer.
func (g GuardedPeer) ImproveBids(req ImproveReq) (BidReply, error) {
	return guard(g.Policy, g.ID, func() (BidReply, error) { return g.Peer.ImproveBids(req) })
}

// FaultAware is implemented by protocols that can run their rounds under a
// FaultPolicy (deadline-cut fan-out with straggler accounting).
type FaultAware interface {
	WithPolicy(*FaultPolicy) Protocol
}
