package trading

import (
	"testing"
	"time"
)

// The directory is an exclusion list: a peer nobody has complained about is
// Active and worth an RFB; marked states gate it; a successful contact
// un-drains it.
func TestDirectoryStateMachine(t *testing.T) {
	d := NewDirectory(nil)
	if d.State("n1") != StateActive || !d.Eligible("n1") {
		t.Fatal("unknown peers must default to Active and eligible")
	}

	d.MarkState("n1", StateDraining)
	if d.State("n1") != StateDraining || d.Eligible("n1") {
		t.Fatal("a draining peer must be excluded from fan-out")
	}

	// Answering a new call proves the drain was cancelled.
	d.Seen("n1")
	if d.State("n1") != StateActive || !d.Eligible("n1") {
		t.Fatal("Seen must un-drain a draining peer")
	}

	// Left is not undone by Seen: departure is announced, not inferred.
	d.MarkState("n2", StateLeft)
	d.Seen("n2")
	if d.State("n2") != StateLeft || d.Eligible("n2") {
		t.Fatal("Seen must not resurrect a left peer")
	}

	d.Forget("n2")
	if d.State("n2") != StateActive || !d.Eligible("n2") {
		t.Fatal("a forgotten peer is a stranger again: Active by default")
	}
}

// An open breaker makes a peer as ineligible as a drain mark, and the
// half-open probe window restores eligibility.
func TestDirectoryFoldsBreakerState(t *testing.T) {
	bs := NewBreakerSet(BreakerConfig{Threshold: 2, Cooldown: time.Hour}, nil)
	d := NewDirectory(bs)

	if !d.Eligible("n1") {
		t.Fatal("closed breaker, active peer: eligible")
	}
	b := bs.For("n1")
	b.OnFailure()
	if !d.Eligible("n1") {
		t.Fatal("one failure must not gate the peer yet")
	}
	b.OnFailure()
	if d.Eligible("n1") {
		t.Fatal("an open breaker must gate the peer")
	}
	if d.State("n1") != StateActive {
		t.Fatal("breaker state must not leak into lifecycle state")
	}

	snap := d.Snapshot()
	// n1 has no directory entry yet (only a breaker); Seen creates one so the
	// snapshot can join lifecycle and breaker views.
	if len(snap) != 0 {
		t.Fatalf("snapshot before any directory contact: %+v", snap)
	}
	d.Seen("n1")
	snap = d.Snapshot()
	if len(snap) != 1 || snap[0].ID != "n1" || snap[0].Breaker != "open" ||
		snap[0].State != "active" || snap[0].LastSeen.IsZero() {
		t.Fatalf("joined snapshot: %+v", snap)
	}
}

// Snapshot is sorted by peer id and carries each entry's lifecycle state.
func TestDirectorySnapshotSorted(t *testing.T) {
	d := NewDirectory(nil)
	d.MarkState("zeta", StateDraining)
	d.MarkState("alpha", StateActive)
	d.MarkState("mid", StateLeft)
	snap := d.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot size: %+v", snap)
	}
	wantIDs := []string{"alpha", "mid", "zeta"}
	wantStates := []string{"active", "left", "draining"}
	for i := range snap {
		if snap[i].ID != wantIDs[i] || snap[i].State != wantStates[i] {
			t.Fatalf("snapshot[%d] = %+v, want %s/%s", i, snap[i], wantIDs[i], wantStates[i])
		}
	}
}

// A nil directory gates nothing — the ungated federation keeps its exact
// pre-directory behaviour.
func TestDirectoryNilSafety(t *testing.T) {
	var d *Directory
	d.MarkState("n1", StateDraining)
	d.Seen("n1")
	d.Forget("n1")
	if d.State("n1") != StateActive {
		t.Fatal("nil directory must report Active")
	}
	if !d.Eligible("n1") {
		t.Fatal("nil directory must gate nothing")
	}
	if d.Snapshot() != nil {
		t.Fatal("nil directory snapshot must be nil")
	}
}
