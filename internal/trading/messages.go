// Package trading implements the generic e-commerce trading layer of §2 of
// the paper, specialized to query-answers as the commodity: the message
// vocabulary (requests for bids, offers, improvement rounds), the negotiation
// protocols (sealed bidding, iterative bidding, bargaining) and the pricing
// strategies (cooperative truthful, competitive with adaptive margin,
// load-aware). The buyer and seller *content* — which queries to ask for,
// what partial answers to offer — lives in the node and core packages; this
// package only knows values and messages, exactly like the protocol/strategy
// module split of Figure 1 in the paper.
package trading

import (
	"qtrade/internal/cost"
	"qtrade/internal/obs"
	"qtrade/internal/value"
)

// QueryRequest is one entry of the buyer's set Q: a query (as SQL text) the
// buyer would like to purchase, with the buyer's strategic value estimate.
type QueryRequest struct {
	QID      string
	SQL      string
	EstValue float64 // buyer's current estimate of the query's value (0 = unknown)
}

// RFB is a request for bids (step B2 of the algorithm). Depth counts
// subcontracting hops: buyers send Depth 0; a seller purchasing missing
// fragments from third nodes (§3.5) re-issues the gap queries at Depth 1,
// and sellers never subcontract a Depth>0 request (bounded recursion).
type RFB struct {
	RFBID   string
	BuyerID string
	Depth   int
	// Trace is the buyer's distributed-tracing context. The zero value means
	// unsampled: sellers record nothing and the wire size is unchanged.
	Trace   obs.TraceContext
	Queries []QueryRequest
}

// ColSpec describes one output column of an offered query-answer.
type ColSpec struct {
	Table string
	Name  string
	Kind  value.Kind
}

// Offer is a seller's bid: an offer to deliver the answer of SQL (typically
// a rewritten part of a requested query) at the given valuation and price.
type Offer struct {
	OfferID  string
	RFBID    string
	QID      string // the buyer query this offer responds to
	SellerID string
	SQL      string
	// Bindings are the FROM bindings of the original query covered by the
	// offer; Parts maps each (lower-cased) binding to the partition ids
	// covered.
	Bindings []string
	Parts    map[string][]string
	// Complete reports full coverage of every partition of every covered
	// relation; Stripped reports that aggregation was removed and the buyer
	// must re-aggregate; FromView marks offers derived from materialized
	// views (§3.5); PartialAgg marks per-fragment partial aggregates the
	// buyer merges (SUM of SUMs) instead of re-aggregating raw rows.
	Complete   bool
	Stripped   bool
	FromView   bool
	PartialAgg bool
	Cols       []ColSpec
	Props      cost.Valuation
	Price      float64 // the asked value under the federation's weighting
}

// WireSize estimates the network size of an offer in bytes, for the message
// accounting the experiments report.
func (o *Offer) WireSize() int {
	n := 96 + len(o.OfferID) + len(o.RFBID) + len(o.QID) + len(o.SellerID) + len(o.SQL)
	for _, b := range o.Bindings {
		n += len(b) + 4
	}
	for k, ps := range o.Parts {
		n += len(k) + 4
		for _, p := range ps {
			n += len(p) + 4
		}
	}
	n += 24 * len(o.Cols)
	return n
}

// WireSize estimates the network size of an RFB.
func (r *RFB) WireSize() int {
	n := 32 + len(r.RFBID) + len(r.BuyerID) + r.Trace.WireSize()
	for _, q := range r.Queries {
		n += 24 + len(q.QID) + len(q.SQL)
	}
	return n
}

// BidReply is the seller's reply envelope for RequestBids/ImproveBids: the
// offers plus, when the request's trace context was sampled, the seller's
// finished span subtree for the exchange (nil otherwise). With a nil Trace
// the wire size is exactly the pre-envelope framing + offers.
type BidReply struct {
	Offers []Offer
	Trace  *obs.SpanPayload
}

// WireSize estimates the network size of the reply.
func (r *BidReply) WireSize() int {
	n := 8 + r.Trace.WireSize()
	for i := range r.Offers {
		n += r.Offers[i].WireSize()
	}
	return n
}

// ImproveReq asks sellers to improve their standing offers given the best
// competing price per query (iterative bidding) or a buyer target price
// (bargaining counter-offer).
type ImproveReq struct {
	RFBID   string
	BuyerID string
	// Trace is the buyer's distributed-tracing context (see RFB.Trace).
	Trace obs.TraceContext
	// BestPrice maps QID to the best price seen so far.
	BestPrice map[string]float64
	// Target maps QID to the buyer's counter-offer price; nil outside
	// bargaining.
	Target map[string]float64
}

// WireSize estimates the network size of an improvement request.
func (r *ImproveReq) WireSize() int {
	n := 32 + len(r.RFBID) + len(r.BuyerID) + r.Trace.WireSize()
	n += 24 * (len(r.BestPrice) + len(r.Target))
	return n
}

// Award notifies a seller that its offer won and asks it to stand by to
// deliver (execution happens later via ExecReq).
type Award struct {
	RFBID   string
	OfferID string
	BuyerID string
}

// WireSize estimates the network size of an award message.
func (a *Award) WireSize() int { return 24 + len(a.RFBID) + len(a.OfferID) + len(a.BuyerID) }

// ExecReq asks a seller to actually evaluate a purchased query and ship the
// answer. It is the only message that triggers execution.
//
// Answers ship whole by default. The streaming fields turn the exchange into
// a chunked fetch over the same message pair: Stream asks the seller to open
// a cursor and return at most BatchRows rows plus a continuation token; the
// buyer then repeats the request with Cursor set and Seq incremented per
// batch until More goes false, or sends CloseCursor to abandon the rest
// (early close — LIMIT satisfied, plan failed elsewhere). Seq makes
// continuation idempotent under the fault policy's retries: a seller
// re-delivers the batch it already sent for a repeated Seq instead of
// advancing. Zero values gob-encode identically to the pre-streaming
// message, so mixed-version federations interoperate.
type ExecReq struct {
	BuyerID string
	OfferID string
	SQL     string
	// Stream requests chunked delivery of at most BatchRows rows per
	// response (0 means the seller's default).
	Stream    bool
	BatchRows int
	// Cursor continues (or, with CloseCursor, releases) a previously opened
	// seller-side cursor. Seq is the 1-based index of the requested batch.
	Cursor      string
	Seq         int64
	CloseCursor bool
	// Trace is the buyer's distributed-tracing context (see RFB.Trace).
	Trace obs.TraceContext
}

// WireSize estimates the network size of an execution request.
func (e *ExecReq) WireSize() int {
	n := 24 + len(e.BuyerID) + len(e.OfferID) + len(e.SQL) + e.Trace.WireSize()
	if e.Stream {
		n += 12 // stream flag + batch hint
	}
	if e.Cursor != "" {
		n += len(e.Cursor) + 12 // token + seq + close flag
	}
	return n
}

// ExecResp carries a shipped query answer (or one batch of it) and, when the
// request was sampled, the seller's execution span subtree. ExecMS is the
// seller's own measured execution wall time in milliseconds — the actual
// cost behind the quote it bid with, which the buyer's trading ledger
// compares against the offer's estimated TotalTime for cost-model
// calibration; on a streamed answer each batch reports the cumulative wall
// time so far, so the final batch carries the total.
type ExecResp struct {
	Cols   []ColSpec
	Rows   []value.Row
	ExecMS float64
	// Cursor is the continuation token of a streamed answer; More reports
	// whether batches remain beyond this one. An exhausted-or-unstreamed
	// answer leaves both zero.
	Cursor string
	More   bool
	Trace  *obs.SpanPayload
}

// WireSize estimates the network size of a shipped answer.
func (e *ExecResp) WireSize() int {
	n := 24 + 24*len(e.Cols) + e.Trace.WireSize()
	if e.Cursor != "" {
		n += len(e.Cursor) + 8 // token + more flag
	}
	for _, r := range e.Rows {
		for _, v := range r {
			switch v.K {
			case value.Str:
				n += len(v.S) + 4
			default:
				n += 8
			}
		}
	}
	return n
}
