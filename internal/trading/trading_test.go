package trading

import (
	"errors"
	"sync"
	"testing"

	"qtrade/internal/cost"
	"qtrade/internal/value"
)

// fakeSeller is a scripted Peer for protocol tests.
type fakeSeller struct {
	id    string
	price float64
	floor float64 // lowest price it will go to
	fail  bool

	mu       sync.Mutex
	current  float64
	improves int
}

func (f *fakeSeller) RequestBids(rfb RFB) (BidReply, error) {
	if f.fail {
		return BidReply{}, errors.New("down")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.current = f.price
	var out []Offer
	for _, q := range rfb.Queries {
		out = append(out, Offer{
			OfferID: f.id + "/" + q.QID, RFBID: rfb.RFBID, QID: q.QID,
			SellerID: f.id, SQL: q.SQL, Price: f.current,
			Props: cost.Valuation{TotalTime: f.floor},
		})
	}
	return BidReply{Offers: out}, nil
}

func (f *fakeSeller) ImproveBids(req ImproveReq) (BidReply, error) {
	if f.fail {
		return BidReply{}, errors.New("down")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []Offer
	for qid, best := range req.BestPrice {
		target := best
		if t, ok := req.Target[qid]; ok && t < target {
			target = t
		}
		undercut := target * 0.95
		if undercut < f.floor || undercut >= f.current {
			continue
		}
		f.current = undercut
		f.improves++
		out = append(out, Offer{
			OfferID: f.id + "/" + qid, RFBID: req.RFBID, QID: qid,
			SellerID: f.id, Price: f.current,
		})
	}
	return BidReply{Offers: out}, nil
}

func rfb1() RFB {
	return RFB{RFBID: "r1", BuyerID: "buyer", Queries: []QueryRequest{{QID: "q1", SQL: "SELECT x FROM t"}}}
}

func TestSealedBidCollectsFromAllPeers(t *testing.T) {
	peers := map[string]Peer{
		"a": &fakeSeller{id: "a", price: 10, floor: 5},
		"b": &fakeSeller{id: "b", price: 20, floor: 15},
		"c": &fakeSeller{id: "c", fail: true},
	}
	offers, rounds, err := SealedBid{}.Collect(rfb1(), peers, nil)
	if err != nil || rounds != 1 {
		t.Fatalf("sealed: %v rounds=%d", err, rounds)
	}
	if len(offers) != 2 {
		t.Fatalf("offers: %d (failing peer must be skipped)", len(offers))
	}
	// Deterministic order.
	if offers[0].SellerID != "a" || offers[1].SellerID != "b" {
		t.Fatalf("order: %v", offers)
	}
}

func TestIterativeBidDrivesPricesDown(t *testing.T) {
	a := &fakeSeller{id: "a", price: 10, floor: 6}
	b := &fakeSeller{id: "b", price: 12, floor: 2}
	peers := map[string]Peer{"a": a, "b": b}
	offers, rounds, err := IterativeBid{MaxRounds: 40}.Collect(rfb1(), peers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 2 {
		t.Fatalf("expected multiple rounds, got %d", rounds)
	}
	w := SelectWinners(offers)["q1"]
	// b can undercut below a's floor of 6; winner must be b with price < 6.
	if w.SellerID != "b" || w.Price >= 6 {
		t.Fatalf("winner: %+v", w)
	}
}

func TestIterativeBidStopsWhenStable(t *testing.T) {
	a := &fakeSeller{id: "a", price: 10, floor: 10}
	peers := map[string]Peer{"a": a}
	_, rounds, _ := IterativeBid{MaxRounds: 10}.Collect(rfb1(), peers, nil)
	if rounds != 2 { // initial + one no-change improvement round
		t.Fatalf("rounds: %d", rounds)
	}
}

func TestBargainUsesCounterOffers(t *testing.T) {
	a := &fakeSeller{id: "a", price: 100, floor: 10}
	peers := map[string]Peer{"a": a}
	offers, _, err := Bargain{MaxRounds: 8, Buyer: AnchoredBuyer{Discount: 0.5}}.Collect(rfb1(), peers, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := SelectWinners(offers)["q1"]
	if w.Price >= 50 {
		t.Fatalf("bargaining should cut deep: %f", w.Price)
	}
	if a.improves == 0 {
		t.Fatal("seller never improved")
	}
}

func TestSelectWinnersTieBreaking(t *testing.T) {
	offers := []Offer{
		{OfferID: "2", QID: "q", SellerID: "b", Price: 5},
		{OfferID: "1", QID: "q", SellerID: "a", Price: 5},
		{OfferID: "3", QID: "q2", SellerID: "c", Price: 9},
	}
	w := SelectWinners(offers)
	if w["q"].SellerID != "a" {
		t.Fatalf("tie must break by seller id: %+v", w["q"])
	}
	if len(w) != 2 {
		t.Fatalf("winners: %d", len(w))
	}
}

func TestMergeImproved(t *testing.T) {
	standing := []Offer{{OfferID: "x", QID: "q", Price: 10}}
	merged, changed := mergeImproved(standing, []Offer{{OfferID: "x", QID: "q", Price: 8}})
	if !changed || merged[0].Price != 8 {
		t.Fatalf("merge: %+v", merged)
	}
	// Higher price does not replace.
	merged, changed = mergeImproved(merged, []Offer{{OfferID: "x", QID: "q", Price: 9}})
	if changed || merged[0].Price != 8 {
		t.Fatalf("regression: %+v", merged)
	}
	// New offers append.
	merged, changed = mergeImproved(merged, []Offer{{OfferID: "y", QID: "q", Price: 7}})
	if !changed || len(merged) != 2 {
		t.Fatalf("append: %+v", merged)
	}
	if _, ch := mergeImproved(merged, nil); ch {
		t.Fatal("empty improvement must not report change")
	}
}

func TestCooperativeStrategyTruthful(t *testing.T) {
	var s Cooperative
	if s.Price("q", 42) != 42 {
		t.Fatal("cooperative must be truthful")
	}
	if _, ch := s.Improve("q", 42, 42, 10); ch {
		t.Fatal("truthful ask cannot improve")
	}
	s.Observe("q", true) // no-op, must not panic
}

func TestCompetitiveMarginAdaptation(t *testing.T) {
	c := NewCompetitive()
	p0 := c.Price("q", 100)
	if p0 != 130 {
		t.Fatalf("initial ask: %f", p0)
	}
	// Losses decay the margin toward the floor.
	for i := 0; i < 50; i++ {
		c.Observe("q", false)
	}
	if m := c.Margin(); m > c.MinMargin*1.01 {
		t.Fatalf("margin after losses: %f", m)
	}
	// Wins grow it back, capped.
	for i := 0; i < 500; i++ {
		c.Observe("q", true)
	}
	if m := c.Margin(); m < c.MaxMargin*0.99 {
		t.Fatalf("margin after wins: %f", m)
	}
}

func TestCompetitiveImprove(t *testing.T) {
	c := NewCompetitive()
	// Current 130 (truth 100), competitor at 120: undercut to 114.
	p, ch := c.Improve("q", 130, 100, 120)
	if !ch || p >= 120 || p < 102 {
		t.Fatalf("undercut: %f %v", p, ch)
	}
	// Competitor below our floor: give up.
	if _, ch := c.Improve("q", 130, 100, 101); ch {
		t.Fatal("cannot undercut below min margin")
	}
	// Already cheapest: no change.
	if _, ch := c.Improve("q", 100, 90, 150); ch {
		t.Fatal("already best, no improvement")
	}
}

func TestLoadAware(t *testing.T) {
	load := 1.0
	l := &LoadAware{Inner: Cooperative{}, Load: func() float64 { return load }}
	if l.Price("q", 100) != 200 {
		t.Fatalf("loaded price: %f", l.Price("q", 100))
	}
	load = 0
	if l.Price("q", 100) != 100 {
		t.Fatal("idle price must be truthful")
	}
	load = -5
	if l.Price("q", 100) != 100 {
		t.Fatal("negative load clamps to 0")
	}
	l.Observe("q", true) // must not panic
	nilLoad := &LoadAware{Inner: Cooperative{}}
	if nilLoad.Price("q", 100) != 100 {
		t.Fatal("nil load func means idle")
	}
}

func TestAnchoredBuyer(t *testing.T) {
	b := AnchoredBuyer{Discount: 0.8}
	if b.Estimate("q", 0) != 0 {
		t.Fatal("no anchor yet")
	}
	if b.Estimate("q", 100) != 80 {
		t.Fatal("discounted estimate")
	}
	if b.CounterOffer("q", 100) != 80 {
		t.Fatal("counter offer")
	}
	bad := AnchoredBuyer{Discount: 7}
	if bad.CounterOffer("q", 100) != 90 {
		t.Fatal("invalid discount falls back to 0.9")
	}
}

func TestWireSizes(t *testing.T) {
	r := rfb1()
	if r.WireSize() <= 0 {
		t.Fatal("rfb size")
	}
	o := Offer{OfferID: "o", SQL: "SELECT 1", Bindings: []string{"a"},
		Parts: map[string][]string{"a": {"p0"}}, Cols: []ColSpec{{Name: "x"}}}
	if o.WireSize() <= len(o.SQL) {
		t.Fatal("offer size must include metadata")
	}
	ir := ImproveReq{BestPrice: map[string]float64{"q": 1}}
	if ir.WireSize() <= 0 {
		t.Fatal("improve size")
	}
	aw := Award{RFBID: "r", OfferID: "o"}
	if aw.WireSize() <= 0 {
		t.Fatal("award size")
	}
	er := ExecReq{SQL: "SELECT 1"}
	if er.WireSize() <= 0 {
		t.Fatal("exec req size")
	}
	resp := ExecResp{
		Cols: []ColSpec{{Name: "x"}},
		Rows: []value.Row{{value.NewStr("abc")}, {value.NewInt(1)}},
	}
	if resp.WireSize() < 7+8 {
		t.Fatalf("resp size: %d", resp.WireSize())
	}
}

func TestTruthScoreUsesWeights(t *testing.T) {
	w := cost.Weights{TotalTime: 1, Money: 2}
	v := cost.Valuation{TotalTime: 10, Money: 5}
	if TruthScore(w, v) != 20 {
		t.Fatalf("score: %f", TruthScore(w, v))
	}
}

func TestStreamingFieldWireSizes(t *testing.T) {
	base := ExecReq{SQL: "SELECT 1"}
	stream := ExecReq{SQL: "SELECT 1", Stream: true, BatchRows: 256}
	if stream.WireSize() <= base.WireSize() {
		t.Fatal("stream open must cost wire bytes")
	}
	cont := ExecReq{OfferID: "o", Cursor: "corfu.c1", Seq: 3}
	plain := ExecReq{OfferID: "o"}
	if cont.WireSize() <= plain.WireSize() {
		t.Fatal("continuation token must cost wire bytes")
	}
	resp := ExecResp{Rows: []value.Row{{value.NewInt(1)}}}
	parked := ExecResp{Rows: []value.Row{{value.NewInt(1)}}, Cursor: "corfu.c1", More: true}
	if parked.WireSize() <= resp.WireSize() {
		t.Fatal("continuation reply must cost wire bytes")
	}
}
