package trading

import (
	"bytes"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"qtrade/internal/obs"
)

func TestTransientClassification(t *testing.T) {
	base := errors.New("boom")
	if IsTransient(base) {
		t.Fatal("plain errors are not transient")
	}
	m := MarkTransient(base)
	if !IsTransient(m) {
		t.Fatal("marked error must be transient")
	}
	if !errors.Is(m, base) {
		t.Fatal("marking must preserve the chain")
	}
	wrapped := errors.Join(errors.New("ctx"), m)
	if !IsTransient(wrapped) {
		t.Fatal("transience must survive wrapping")
	}
	if MarkTransient(nil) != nil {
		t.Fatal("nil stays nil")
	}
}

// fakeClock is an adjustable clock for breaker cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second, HalfOpenProbes: 2})
	b.now = clk.now

	for i := 0; i < 2; i++ {
		b.OnFailure()
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("below threshold: %v", st)
	}
	b.OnSuccess() // success resets the consecutive-failure count
	for i := 0; i < 2; i++ {
		b.OnFailure()
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("reset not applied: %v", st)
	}
	b.OnFailure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("at threshold: %v", st)
	}
	if b.Allow() {
		t.Fatal("open breaker must reject")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: probes must be allowed")
	}
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("after cooldown: %v", st)
	}
	b.OnFailure() // failed probe reopens immediately
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("failed probe: %v", st)
	}
	clk.advance(time.Second)
	b.Allow()
	b.OnSuccess()
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("one of two probes: %v", st)
	}
	b.OnSuccess()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("probes done: %v", st)
	}
}

func TestBreakerSetMetrics(t *testing.T) {
	m := obs.NewMetrics()
	set := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Hour}, m)
	b := set.For("n1")
	if set.For("n1") != b {
		t.Fatal("same peer must share one breaker")
	}
	b.OnFailure()
	if v := m.Gauge("fault.breaker.n1").Value(); v != float64(BreakerOpen) {
		t.Fatalf("gauge: %v", v)
	}
	if v := m.Counter("fault.breaker_opens").Value(); v != 1 {
		t.Fatalf("opens: %v", v)
	}
}

// flakyPeer fails its first n calls with a transient error, then succeeds.
type flakyPeer struct {
	fails int32
	calls atomic.Int32
}

func (p *flakyPeer) RequestBids(RFB) (BidReply, error) {
	if p.calls.Add(1) <= p.fails {
		return BidReply{}, MarkTransient(errors.New("flaky"))
	}
	return BidReply{Offers: []Offer{{OfferID: "f/1", SellerID: "f", Price: 1}}}, nil
}

func (p *flakyPeer) ImproveBids(ImproveReq) (BidReply, error) { return BidReply{}, nil }

func TestGuardRetriesTransientErrors(t *testing.T) {
	m := obs.NewMetrics()
	pol := &FaultPolicy{MaxRetries: 2, Backoff: time.Microsecond, Metrics: m}
	peer := &flakyPeer{fails: 2}
	rep, err := pol.Wrap("f", peer).RequestBids(RFB{})
	if err != nil || len(rep.Offers) != 1 {
		t.Fatalf("guarded call: %v %v", rep, err)
	}
	if got := m.Counter("fault.retries").Value(); got != 2 {
		t.Fatalf("retries: %d", got)
	}
}

func TestGuardDoesNotRetryHardErrors(t *testing.T) {
	pol := &FaultPolicy{MaxRetries: 3, Backoff: time.Microsecond}
	calls := 0
	err := pol.Call("x", func() error { calls++; return errors.New("hard") })
	if err == nil || calls != 1 {
		t.Fatalf("hard error retried: calls=%d err=%v", calls, err)
	}
}

func TestGuardCallTimeout(t *testing.T) {
	m := obs.NewMetrics()
	pol := &FaultPolicy{CallTimeout: 5 * time.Millisecond, Metrics: m}
	err := pol.Call("slow", func() error {
		time.Sleep(200 * time.Millisecond)
		return nil
	})
	if !errors.Is(err, ErrCallTimeout) || !IsTransient(err) {
		t.Fatalf("want transient ErrCallTimeout, got %v", err)
	}
	if got := m.Counter("fault.call_timeouts").Value(); got != 1 {
		t.Fatalf("timeouts: %d", got)
	}
}

func TestGuardBreakerOpensAndRejects(t *testing.T) {
	m := obs.NewMetrics()
	pol := &FaultPolicy{
		Breakers: NewBreakerSet(BreakerConfig{Threshold: 2, Cooldown: time.Hour}, m),
		Metrics:  m,
	}
	fail := func() error { return errors.New("down") }
	_ = pol.Call("n1", fail)
	_ = pol.Call("n1", fail)
	err := pol.Call("n1", fail)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen, got %v", err)
	}
	if got := m.Counter("fault.breaker_rejects").Value(); got != 1 {
		t.Fatalf("rejects: %d", got)
	}
	// Other peers are unaffected.
	if err := pol.Call("n2", func() error { return nil }); err != nil {
		t.Fatalf("independent peer: %v", err)
	}
}

// stallPeer blocks until released.
type stallPeer struct{ release chan struct{} }

func (p *stallPeer) RequestBids(RFB) (BidReply, error) {
	<-p.release
	return BidReply{Offers: []Offer{{OfferID: "s/1", SellerID: "s", Price: 1}}}, nil
}

func (p *stallPeer) ImproveBids(ImproveReq) (BidReply, error) { return BidReply{}, nil }

func TestRoundDeadlineCutsStragglers(t *testing.T) {
	m := obs.NewMetrics()
	pol := &FaultPolicy{RoundTimeout: 10 * time.Millisecond, Metrics: m}
	stall := &stallPeer{release: make(chan struct{})}
	defer close(stall.release)
	peers := map[string]Peer{
		"fast":  &flakyPeer{},
		"stall": stall,
	}
	offers, rounds, err := SealedBid{Policy: pol}.Collect(RFB{RFBID: "r"}, peers, nil)
	if err != nil || rounds != 1 {
		t.Fatalf("collect: %v %d", err, rounds)
	}
	if len(offers) != 1 || offers[0].SellerID != "f" {
		t.Fatalf("want the fast peer's offer only, got %v", offers)
	}
	if got := m.Counter("fault.stragglers").Value(); got != 1 {
		t.Fatalf("stragglers: %d", got)
	}
	if got := m.Counter("fault.rounds_deadline_cut").Value(); got != 1 {
		t.Fatalf("round cuts: %d", got)
	}
}

// TestStragglerSpanAnnotated pins the traced shape of a deadline-cut round:
// the straggler's pre-created span is annotated deadline_exceeded and, being
// still open when the trace is exported, renders as unfinished instead of
// with a bogus zero duration.
func TestStragglerSpanAnnotated(t *testing.T) {
	m := obs.NewMetrics()
	pol := &FaultPolicy{RoundTimeout: 10 * time.Millisecond, Metrics: m}
	stall := &stallPeer{release: make(chan struct{})}
	peers := map[string]Peer{
		"fast":  &flakyPeer{},
		"stall": stall,
	}
	tr := obs.NewTracer()
	round := tr.Start("buyer", "round")
	offers, _, err := SealedBid{Policy: pol}.Collect(RFB{RFBID: "r"}, peers, round)
	round.End()
	if err != nil || len(offers) != 1 {
		t.Fatalf("collect: %v %v", offers, err)
	}

	// Collect opens one "round" child; the per-seller rfb spans live inside.
	rounds := round.Children()
	if len(rounds) != 1 || rounds[0].Name() != "round" {
		t.Fatalf("want one protocol round span, got %v", rounds)
	}
	spanByName := map[string]*obs.Span{}
	for _, c := range rounds[0].Children() {
		spanByName[c.Name()] = c
	}
	stallSpan, fastSpan := spanByName["rfb stall"], spanByName["rfb fast"]
	if stallSpan == nil || fastSpan == nil {
		t.Fatalf("per-seller spans missing: %v", spanByName)
	}
	attr := func(sp *obs.Span, key string) (string, bool) {
		for _, a := range sp.Attrs() {
			if a.Key == key {
				return a.Val, true
			}
		}
		return "", false
	}
	if v, ok := attr(stallSpan, "deadline_exceeded"); !ok || v != "true" {
		t.Fatalf("straggler span must be annotated deadline_exceeded: %v", stallSpan.Attrs())
	}
	if _, ok := attr(fastSpan, "deadline_exceeded"); ok {
		t.Fatal("fast seller must not be annotated deadline_exceeded")
	}
	if stallSpan.Ended() {
		t.Fatal("straggler span must still be open (its call never returned)")
	}
	// Export while the straggler is still blocked: tolerated, not zeroed.
	text := tr.RenderText()
	if !strings.Contains(text, "deadline_exceeded=true") || !strings.Contains(text, "unfinished=true") {
		t.Fatalf("rendered trace must show the cut straggler:\n%s", text)
	}
	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"unfinished":true`) {
		t.Fatalf("JSONL must flag the open span:\n%s", jsonl.String())
	}
	close(stall.release) // let the goroutine finish
}

func TestNilPolicyIsUnguarded(t *testing.T) {
	var pol *FaultPolicy
	peer := &flakyPeer{}
	if got := pol.Wrap("x", peer); got != Peer(peer) {
		t.Fatal("nil policy must return the peer unchanged")
	}
	if err := pol.Call("x", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	// gather with a nil policy waits for every peer (no deadline).
	offers := fanOut(RFB{}, map[string]Peer{"a": &flakyPeer{}}, 0, nil, nil)
	if len(offers) != 1 {
		t.Fatalf("offers: %v", offers)
	}
}
