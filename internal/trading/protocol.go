package trading

import (
	"sort"
	"sync/atomic"
	"time"

	"qtrade/internal/obs"
)

// Peer is the buyer's handle to one seller node. Implementations count
// messages and simulate transport (see the netsim package) or speak real
// RPC (see cmd/qtnode). Replies are BidReply envelopes so a sampled seller
// can piggyback its span subtree on the offers.
type Peer interface {
	RequestBids(RFB) (BidReply, error)
	ImproveBids(ImproveReq) (BidReply, error)
}

// Protocol is a negotiation protocol: it runs the message exchange of one
// nested negotiation (steps B2/B3/S3) and returns the standing offers. The
// returned round count feeds the experiments' network-time accounting.
// sp is the parent span for this negotiation (nil when tracing is off);
// protocols hang one child per round and one grandchild per seller off it.
type Protocol interface {
	Name() string
	Collect(rfb RFB, peers map[string]Peer, sp *obs.Span) (offers []Offer, rounds int, err error)
}

// ConcurrencyAware is implemented by protocols whose per-round fan-out can
// be bounded by a buyer worker pool. WithWorkers returns a copy of the
// protocol dispatching at most n calls concurrently per round (0 = one
// in-flight call per peer, the full fan-out; 1 = strictly serial in sorted
// peer-id order). The buyer applies it from Config.Workers, mirroring how
// FaultAware threads Config.Faults through.
type ConcurrencyAware interface {
	WithWorkers(n int) Protocol
}

// gatherWorkers normalizes a Workers knob against the peer count: 0 (or
// anything >= len(peers)) means full fan-out, n >= 1 means at most n calls
// in flight.
func gatherWorkers(workers, peers int) int {
	if workers <= 0 || workers > peers {
		return peers
	}
	return workers
}

// gather sends one request to every peer and merges the replies. Dispatch is
// concurrent but bounded by workers (see gatherWorkers): peers are claimed in
// sorted-id order by a pool of worker goroutines, and replies are collected
// positionally into a per-peer slot table, so the merged pool is
// byte-identical whatever the interleaving — the serial path (workers=1) and
// the full fan-out produce the same offers in the same order (pinned by
// core's TestBuyerFanoutMatchesSerial). Failing peers are skipped: autonomy
// means remote nodes may decline or die, and the negotiation must survive
// that.
//
// When pol sets a RoundTimeout the round is cut at that deadline — the
// offers that already arrived are used, peers still in flight OR not yet
// dispatched are counted as stragglers (late replies are discarded through
// the buffered channel) and their spans annotated deadline_exceeded while
// still open (export renders them unfinished=true). With a nil policy (or no
// RoundTimeout) gather waits for every peer, exactly the pre-deadline
// semantics.
//
// Per-seller spans are created before the goroutines launch so the deadline
// branch can annotate stragglers; each call gets the span's ID as the remote
// parent, and a reply that carries a trace payload is grafted under that
// span. The fault layer retries inside call and returns at most one reply
// (abandoned timed-out attempts are discarded before they surface), so a
// retried call can never graft a duplicate subtree.
func gather(label string, peers map[string]Peer, workers int, round *obs.Span, pol *FaultPolicy,
	call func(id string, p Peer, parent uint64) (BidReply, error)) []Offer {

	ids := make([]string, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	type reply struct {
		idx    int
		offers []Offer
		ok     bool
	}
	spans := make([]*obs.Span, len(ids))
	if round != nil {
		for i, id := range ids {
			spans[i] = round.Child(label + " " + id)
		}
	}
	ch := make(chan reply, len(ids))
	var next atomic.Int64 // index of the next undispatched peer
	for w := 0; w < gatherWorkers(workers, len(ids)); w++ {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				id, ss := ids[i], spans[i]
				sentAt := time.Now()
				rep, err := call(id, peers[id], ss.ID())
				if err != nil {
					ss.Set("error", err)
					ss.End()
					ch <- reply{idx: i, ok: false}
					continue
				}
				ss.Set("offers", len(rep.Offers))
				ss.Graft(rep.Trace, sentAt, time.Now())
				ss.End()
				ch <- reply{idx: i, offers: rep.Offers, ok: true}
			}
		}()
	}
	var deadline <-chan time.Time
	if pol != nil && pol.RoundTimeout > 0 {
		t := time.NewTimer(pol.RoundTimeout)
		defer t.Stop()
		deadline = t.C
	}
	slots := make([][]Offer, len(ids))
	pending := make([]bool, len(ids))
	for i := range pending {
		pending[i] = true
	}
	received := 0
	for received < len(ids) {
		select {
		case r := <-ch:
			received++
			pending[r.idx] = false
			if r.ok {
				slots[r.idx] = r.offers
			}
		case <-deadline:
			next.Store(int64(len(ids))) // stop dispatching peers the round no longer wants
			stragglers := len(ids) - received
			pol.obs().stragglers.Add(int64(stragglers))
			pol.obs().roundCuts.Inc()
			round.Set("stragglers", stragglers)
			for i, p := range pending {
				if p {
					spans[i].Set("deadline_exceeded", true)
				}
			}
			received = len(ids)
		}
	}
	var all []Offer
	for _, offers := range slots {
		all = append(all, offers...)
	}
	sortOffers(all)
	return all
}

func fanOut(rfb RFB, peers map[string]Peer, workers int, round *obs.Span, pol *FaultPolicy) []Offer {
	return gather("rfb", peers, workers, round, pol, func(id string, p Peer, parent uint64) (BidReply, error) {
		r := rfb
		if r.Trace.Sampled {
			r.Trace.Parent = parent
		}
		return p.RequestBids(r)
	})
}

func improveRound(req ImproveReq, peers map[string]Peer, workers int, round *obs.Span, pol *FaultPolicy) []Offer {
	return gather("improve", peers, workers, round, pol, func(id string, p Peer, parent uint64) (BidReply, error) {
		r := req
		if r.Trace.Sampled {
			r.Trace.Parent = parent
		}
		return p.ImproveBids(r)
	})
}

// roundSpan opens the span for one protocol round; a no-op when sp is nil.
// The explicit nil guard keeps the disabled path free of the fmt allocation.
func roundSpan(sp *obs.Span, n int) *obs.Span {
	if sp == nil {
		return nil
	}
	r := sp.Child("round")
	r.Set("round", n)
	return r
}

func sortOffers(offers []Offer) {
	sort.Slice(offers, func(i, j int) bool {
		if offers[i].SellerID != offers[j].SellerID {
			return offers[i].SellerID < offers[j].SellerID
		}
		return offers[i].OfferID < offers[j].OfferID
	})
}

// mergeImproved replaces standing offers by improved versions of the same
// OfferID and appends new ones. It reports whether anything improved.
func mergeImproved(standing []Offer, improved []Offer) ([]Offer, bool) {
	if len(improved) == 0 {
		return standing, false
	}
	idx := map[string]int{}
	for i, o := range standing {
		idx[o.OfferID] = i
	}
	changed := false
	for _, o := range improved {
		if i, ok := idx[o.OfferID]; ok {
			if o.Price < standing[i].Price {
				standing[i] = o
				changed = true
			}
			continue
		}
		standing = append(standing, o)
		idx[o.OfferID] = len(standing) - 1
		changed = true
	}
	return standing, changed
}

// bestPrices computes the best standing price per query id.
func bestPrices(offers []Offer) map[string]float64 {
	best := map[string]float64{}
	for _, o := range offers {
		if b, ok := best[o.QID]; !ok || o.Price < b {
			best[o.QID] = o.Price
		}
	}
	return best
}

// SealedBid is the paper's default bidding protocol: one RFB round, sellers
// answer with offers, the buyer picks winners.
type SealedBid struct {
	// Policy, when set, bounds the round with a straggler-cutting deadline.
	Policy *FaultPolicy
	// Workers bounds the fan-out (0 = one in-flight call per peer).
	Workers int
}

// Name implements Protocol.
func (SealedBid) Name() string { return "sealed-bid" }

// WithPolicy implements FaultAware.
func (p SealedBid) WithPolicy(pol *FaultPolicy) Protocol { p.Policy = pol; return p }

// WithWorkers implements ConcurrencyAware.
func (p SealedBid) WithWorkers(n int) Protocol { p.Workers = n; return p }

// Collect implements Protocol.
func (p SealedBid) Collect(rfb RFB, peers map[string]Peer, sp *obs.Span) ([]Offer, int, error) {
	round := roundSpan(sp, 1)
	offers := fanOut(rfb, peers, p.Workers, round, p.Policy)
	round.End()
	return offers, 1, nil
}

// IterativeBid announces the best standing price after each round and lets
// sellers undercut, up to MaxRounds or until prices stop moving (an open-cry
// descending auction).
type IterativeBid struct {
	MaxRounds int // total rounds including the initial sealed round
	// Policy, when set, bounds every round with a straggler-cutting deadline.
	Policy *FaultPolicy
	// Workers bounds every round's fan-out (0 = one in-flight call per peer).
	Workers int
}

// Name implements Protocol.
func (p IterativeBid) Name() string { return "iterative-bid" }

// WithPolicy implements FaultAware.
func (p IterativeBid) WithPolicy(pol *FaultPolicy) Protocol { p.Policy = pol; return p }

// WithWorkers implements ConcurrencyAware.
func (p IterativeBid) WithWorkers(n int) Protocol { p.Workers = n; return p }

// Collect implements Protocol.
func (p IterativeBid) Collect(rfb RFB, peers map[string]Peer, sp *obs.Span) ([]Offer, int, error) {
	rounds := p.MaxRounds
	if rounds < 1 {
		rounds = 3
	}
	round := roundSpan(sp, 1)
	offers := fanOut(rfb, peers, p.Workers, round, p.Policy)
	round.End()
	used := 1
	for used < rounds && len(offers) > 0 {
		req := ImproveReq{RFBID: rfb.RFBID, BuyerID: rfb.BuyerID, Trace: rfb.Trace, BestPrice: bestPrices(offers)}
		round = roundSpan(sp, used+1)
		improved := improveRound(req, peers, p.Workers, round, p.Policy)
		round.End()
		var changed bool
		offers, changed = mergeImproved(offers, improved)
		used++
		if !changed {
			break
		}
	}
	return offers, used, nil
}

// Bargain has the buyer counter-offer a target price below the best standing
// offer each round; sellers that can meet it (per their strategy) undercut.
type Bargain struct {
	MaxRounds int
	Buyer     BuyerStrategy
	// Policy, when set, bounds every round with a straggler-cutting deadline.
	Policy *FaultPolicy
	// Workers bounds every round's fan-out (0 = one in-flight call per peer).
	Workers int
}

// Name implements Protocol.
func (p Bargain) Name() string { return "bargain" }

// WithPolicy implements FaultAware.
func (p Bargain) WithPolicy(pol *FaultPolicy) Protocol { p.Policy = pol; return p }

// WithWorkers implements ConcurrencyAware.
func (p Bargain) WithWorkers(n int) Protocol { p.Workers = n; return p }

// Collect implements Protocol.
func (p Bargain) Collect(rfb RFB, peers map[string]Peer, sp *obs.Span) ([]Offer, int, error) {
	rounds := p.MaxRounds
	if rounds < 1 {
		rounds = 3
	}
	buyer := p.Buyer
	if buyer == nil {
		buyer = AnchoredBuyer{}
	}
	round := roundSpan(sp, 1)
	offers := fanOut(rfb, peers, p.Workers, round, p.Policy)
	round.End()
	used := 1
	for used < rounds && len(offers) > 0 {
		best := bestPrices(offers)
		target := make(map[string]float64, len(best))
		for qid, b := range best {
			target[qid] = buyer.CounterOffer(qid, b)
		}
		req := ImproveReq{RFBID: rfb.RFBID, BuyerID: rfb.BuyerID, Trace: rfb.Trace, BestPrice: best, Target: target}
		round = roundSpan(sp, used+1)
		improved := improveRound(req, peers, p.Workers, round, p.Policy)
		round.End()
		var changed bool
		offers, changed = mergeImproved(offers, improved)
		used++
		if !changed {
			break
		}
	}
	return offers, used, nil
}

// SelectWinners picks, for every query id, the standing offer with the best
// (lowest) price — the buyer's winner determination for simple valuations.
// Ties break deterministically by seller then offer id.
func SelectWinners(offers []Offer) map[string]Offer {
	winners := map[string]Offer{}
	for _, o := range offers {
		w, ok := winners[o.QID]
		if !ok || o.Price < w.Price ||
			(o.Price == w.Price && (o.SellerID < w.SellerID || (o.SellerID == w.SellerID && o.OfferID < w.OfferID))) {
			winners[o.QID] = o
		}
	}
	return winners
}
