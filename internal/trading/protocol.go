package trading

import (
	"sort"
	"time"

	"qtrade/internal/obs"
)

// Peer is the buyer's handle to one seller node. Implementations count
// messages and simulate transport (see the netsim package) or speak real
// RPC (see cmd/qtnode). Replies are BidReply envelopes so a sampled seller
// can piggyback its span subtree on the offers.
type Peer interface {
	RequestBids(RFB) (BidReply, error)
	ImproveBids(ImproveReq) (BidReply, error)
}

// Protocol is a negotiation protocol: it runs the message exchange of one
// nested negotiation (steps B2/B3/S3) and returns the standing offers. The
// returned round count feeds the experiments' network-time accounting.
// sp is the parent span for this negotiation (nil when tracing is off);
// protocols hang one child per round and one grandchild per seller off it.
type Protocol interface {
	Name() string
	Collect(rfb RFB, peers map[string]Peer, sp *obs.Span) (offers []Offer, rounds int, err error)
}

// gather sends one request to every peer concurrently and merges the
// replies. Failing peers are skipped: autonomy means remote nodes may
// decline or die, and the negotiation must survive that. When pol sets a
// RoundTimeout the round is cut at that deadline — the offers that already
// arrived are used, peers still in flight are counted as stragglers (their
// late replies are discarded through the buffered channel) and their spans
// annotated deadline_exceeded while still open (export renders them
// unfinished=true). With a nil policy (or no RoundTimeout) gather waits for
// every peer, exactly the pre-deadline semantics.
//
// Per-seller spans are created before the goroutines launch so the deadline
// branch can annotate stragglers; each call gets the span's ID as the remote
// parent, and a reply that carries a trace payload is grafted under that
// span. The fault layer retries inside call and returns at most one reply
// (abandoned timed-out attempts are discarded before they surface), so a
// retried call can never graft a duplicate subtree.
func gather(label string, peers map[string]Peer, round *obs.Span, pol *FaultPolicy,
	call func(id string, p Peer, parent uint64) (BidReply, error)) []Offer {

	type reply struct {
		id     string
		offers []Offer
		ok     bool
	}
	spans := make(map[string]*obs.Span, len(peers))
	if round != nil {
		for id := range peers {
			spans[id] = round.Child(label + " " + id)
		}
	}
	ch := make(chan reply, len(peers))
	for id, p := range peers {
		go func(id string, p Peer, ss *obs.Span) {
			sentAt := time.Now()
			rep, err := call(id, p, ss.ID())
			if err != nil {
				ss.Set("error", err)
				ss.End()
				ch <- reply{id: id, ok: false}
				return
			}
			ss.Set("offers", len(rep.Offers))
			ss.Graft(rep.Trace, sentAt, time.Now())
			ss.End()
			ch <- reply{id: id, offers: rep.Offers, ok: true}
		}(id, p, spans[id])
	}
	var deadline <-chan time.Time
	if pol != nil && pol.RoundTimeout > 0 {
		t := time.NewTimer(pol.RoundTimeout)
		defer t.Stop()
		deadline = t.C
	}
	var all []Offer
	received := 0
	pending := make(map[string]bool, len(peers))
	for id := range peers {
		pending[id] = true
	}
	for received < len(peers) {
		select {
		case r := <-ch:
			received++
			delete(pending, r.id)
			if r.ok {
				all = append(all, r.offers...)
			}
		case <-deadline:
			stragglers := len(peers) - received
			pol.obs().stragglers.Add(int64(stragglers))
			pol.obs().roundCuts.Inc()
			round.Set("stragglers", stragglers)
			for id := range pending {
				spans[id].Set("deadline_exceeded", true)
			}
			received = len(peers)
		}
	}
	sortOffers(all)
	return all
}

func fanOut(rfb RFB, peers map[string]Peer, round *obs.Span, pol *FaultPolicy) []Offer {
	return gather("rfb", peers, round, pol, func(id string, p Peer, parent uint64) (BidReply, error) {
		r := rfb
		if r.Trace.Sampled {
			r.Trace.Parent = parent
		}
		return p.RequestBids(r)
	})
}

func improveRound(req ImproveReq, peers map[string]Peer, round *obs.Span, pol *FaultPolicy) []Offer {
	return gather("improve", peers, round, pol, func(id string, p Peer, parent uint64) (BidReply, error) {
		r := req
		if r.Trace.Sampled {
			r.Trace.Parent = parent
		}
		return p.ImproveBids(r)
	})
}

// roundSpan opens the span for one protocol round; a no-op when sp is nil.
// The explicit nil guard keeps the disabled path free of the fmt allocation.
func roundSpan(sp *obs.Span, n int) *obs.Span {
	if sp == nil {
		return nil
	}
	r := sp.Child("round")
	r.Set("round", n)
	return r
}

func sortOffers(offers []Offer) {
	sort.Slice(offers, func(i, j int) bool {
		if offers[i].SellerID != offers[j].SellerID {
			return offers[i].SellerID < offers[j].SellerID
		}
		return offers[i].OfferID < offers[j].OfferID
	})
}

// mergeImproved replaces standing offers by improved versions of the same
// OfferID and appends new ones. It reports whether anything improved.
func mergeImproved(standing []Offer, improved []Offer) ([]Offer, bool) {
	if len(improved) == 0 {
		return standing, false
	}
	idx := map[string]int{}
	for i, o := range standing {
		idx[o.OfferID] = i
	}
	changed := false
	for _, o := range improved {
		if i, ok := idx[o.OfferID]; ok {
			if o.Price < standing[i].Price {
				standing[i] = o
				changed = true
			}
			continue
		}
		standing = append(standing, o)
		idx[o.OfferID] = len(standing) - 1
		changed = true
	}
	return standing, changed
}

// bestPrices computes the best standing price per query id.
func bestPrices(offers []Offer) map[string]float64 {
	best := map[string]float64{}
	for _, o := range offers {
		if b, ok := best[o.QID]; !ok || o.Price < b {
			best[o.QID] = o.Price
		}
	}
	return best
}

// SealedBid is the paper's default bidding protocol: one RFB round, sellers
// answer with offers, the buyer picks winners.
type SealedBid struct {
	// Policy, when set, bounds the round with a straggler-cutting deadline.
	Policy *FaultPolicy
}

// Name implements Protocol.
func (SealedBid) Name() string { return "sealed-bid" }

// WithPolicy implements FaultAware.
func (p SealedBid) WithPolicy(pol *FaultPolicy) Protocol { p.Policy = pol; return p }

// Collect implements Protocol.
func (p SealedBid) Collect(rfb RFB, peers map[string]Peer, sp *obs.Span) ([]Offer, int, error) {
	round := roundSpan(sp, 1)
	offers := fanOut(rfb, peers, round, p.Policy)
	round.End()
	return offers, 1, nil
}

// IterativeBid announces the best standing price after each round and lets
// sellers undercut, up to MaxRounds or until prices stop moving (an open-cry
// descending auction).
type IterativeBid struct {
	MaxRounds int // total rounds including the initial sealed round
	// Policy, when set, bounds every round with a straggler-cutting deadline.
	Policy *FaultPolicy
}

// Name implements Protocol.
func (p IterativeBid) Name() string { return "iterative-bid" }

// WithPolicy implements FaultAware.
func (p IterativeBid) WithPolicy(pol *FaultPolicy) Protocol { p.Policy = pol; return p }

// Collect implements Protocol.
func (p IterativeBid) Collect(rfb RFB, peers map[string]Peer, sp *obs.Span) ([]Offer, int, error) {
	rounds := p.MaxRounds
	if rounds < 1 {
		rounds = 3
	}
	round := roundSpan(sp, 1)
	offers := fanOut(rfb, peers, round, p.Policy)
	round.End()
	used := 1
	for used < rounds && len(offers) > 0 {
		req := ImproveReq{RFBID: rfb.RFBID, BuyerID: rfb.BuyerID, Trace: rfb.Trace, BestPrice: bestPrices(offers)}
		round = roundSpan(sp, used+1)
		improved := improveRound(req, peers, round, p.Policy)
		round.End()
		var changed bool
		offers, changed = mergeImproved(offers, improved)
		used++
		if !changed {
			break
		}
	}
	return offers, used, nil
}

// Bargain has the buyer counter-offer a target price below the best standing
// offer each round; sellers that can meet it (per their strategy) undercut.
type Bargain struct {
	MaxRounds int
	Buyer     BuyerStrategy
	// Policy, when set, bounds every round with a straggler-cutting deadline.
	Policy *FaultPolicy
}

// Name implements Protocol.
func (p Bargain) Name() string { return "bargain" }

// WithPolicy implements FaultAware.
func (p Bargain) WithPolicy(pol *FaultPolicy) Protocol { p.Policy = pol; return p }

// Collect implements Protocol.
func (p Bargain) Collect(rfb RFB, peers map[string]Peer, sp *obs.Span) ([]Offer, int, error) {
	rounds := p.MaxRounds
	if rounds < 1 {
		rounds = 3
	}
	buyer := p.Buyer
	if buyer == nil {
		buyer = AnchoredBuyer{}
	}
	round := roundSpan(sp, 1)
	offers := fanOut(rfb, peers, round, p.Policy)
	round.End()
	used := 1
	for used < rounds && len(offers) > 0 {
		best := bestPrices(offers)
		target := make(map[string]float64, len(best))
		for qid, b := range best {
			target[qid] = buyer.CounterOffer(qid, b)
		}
		req := ImproveReq{RFBID: rfb.RFBID, BuyerID: rfb.BuyerID, Trace: rfb.Trace, BestPrice: best, Target: target}
		round = roundSpan(sp, used+1)
		improved := improveRound(req, peers, round, p.Policy)
		round.End()
		var changed bool
		offers, changed = mergeImproved(offers, improved)
		used++
		if !changed {
			break
		}
	}
	return offers, used, nil
}

// SelectWinners picks, for every query id, the standing offer with the best
// (lowest) price — the buyer's winner determination for simple valuations.
// Ties break deterministically by seller then offer id.
func SelectWinners(offers []Offer) map[string]Offer {
	winners := map[string]Offer{}
	for _, o := range offers {
		w, ok := winners[o.QID]
		if !ok || o.Price < w.Price ||
			(o.Price == w.Price && (o.SellerID < w.SellerID || (o.SellerID == w.SellerID && o.OfferID < w.OfferID))) {
			winners[o.QID] = o
		}
	}
	return winners
}
