package trading

import (
	"sort"
	"sync"

	"qtrade/internal/obs"
)

// Peer is the buyer's handle to one seller node. Implementations count
// messages and simulate transport (see the netsim package) or speak real
// RPC (see cmd/qtnode).
type Peer interface {
	RequestBids(RFB) ([]Offer, error)
	ImproveBids(ImproveReq) ([]Offer, error)
}

// Protocol is a negotiation protocol: it runs the message exchange of one
// nested negotiation (steps B2/B3/S3) and returns the standing offers. The
// returned round count feeds the experiments' network-time accounting.
// sp is the parent span for this negotiation (nil when tracing is off);
// protocols hang one child per round and one grandchild per seller off it.
type Protocol interface {
	Name() string
	Collect(rfb RFB, peers map[string]Peer, sp *obs.Span) (offers []Offer, rounds int, err error)
}

// fanOut sends the RFB to every peer concurrently and merges the replies.
// Failing peers are skipped: autonomy means remote nodes may decline or die,
// and the negotiation must survive that.
func fanOut(rfb RFB, peers map[string]Peer, round *obs.Span) []Offer {
	var mu sync.Mutex
	var wg sync.WaitGroup
	var all []Offer
	for id, p := range peers {
		wg.Add(1)
		go func(id string, p Peer) {
			defer wg.Done()
			var ss *obs.Span
			if round != nil {
				ss = round.Child("rfb " + id)
			}
			offers, err := p.RequestBids(rfb)
			if err != nil {
				ss.Set("error", err)
				ss.End()
				return
			}
			ss.Set("offers", len(offers))
			ss.End()
			mu.Lock()
			all = append(all, offers...)
			mu.Unlock()
		}(id, p)
	}
	wg.Wait()
	sortOffers(all)
	return all
}

func improveRound(req ImproveReq, peers map[string]Peer, round *obs.Span) []Offer {
	var mu sync.Mutex
	var wg sync.WaitGroup
	var all []Offer
	for id, p := range peers {
		wg.Add(1)
		go func(id string, p Peer) {
			defer wg.Done()
			var ss *obs.Span
			if round != nil {
				ss = round.Child("improve " + id)
			}
			offers, err := p.ImproveBids(req)
			if err != nil {
				ss.Set("error", err)
				ss.End()
				return
			}
			ss.Set("offers", len(offers))
			ss.End()
			mu.Lock()
			all = append(all, offers...)
			mu.Unlock()
		}(id, p)
	}
	wg.Wait()
	sortOffers(all)
	return all
}

// roundSpan opens the span for one protocol round; a no-op when sp is nil.
// The explicit nil guard keeps the disabled path free of the fmt allocation.
func roundSpan(sp *obs.Span, n int) *obs.Span {
	if sp == nil {
		return nil
	}
	r := sp.Child("round")
	r.Set("round", n)
	return r
}

func sortOffers(offers []Offer) {
	sort.Slice(offers, func(i, j int) bool {
		if offers[i].SellerID != offers[j].SellerID {
			return offers[i].SellerID < offers[j].SellerID
		}
		return offers[i].OfferID < offers[j].OfferID
	})
}

// mergeImproved replaces standing offers by improved versions of the same
// OfferID and appends new ones. It reports whether anything improved.
func mergeImproved(standing []Offer, improved []Offer) ([]Offer, bool) {
	if len(improved) == 0 {
		return standing, false
	}
	idx := map[string]int{}
	for i, o := range standing {
		idx[o.OfferID] = i
	}
	changed := false
	for _, o := range improved {
		if i, ok := idx[o.OfferID]; ok {
			if o.Price < standing[i].Price {
				standing[i] = o
				changed = true
			}
			continue
		}
		standing = append(standing, o)
		idx[o.OfferID] = len(standing) - 1
		changed = true
	}
	return standing, changed
}

// bestPrices computes the best standing price per query id.
func bestPrices(offers []Offer) map[string]float64 {
	best := map[string]float64{}
	for _, o := range offers {
		if b, ok := best[o.QID]; !ok || o.Price < b {
			best[o.QID] = o.Price
		}
	}
	return best
}

// SealedBid is the paper's default bidding protocol: one RFB round, sellers
// answer with offers, the buyer picks winners.
type SealedBid struct{}

// Name implements Protocol.
func (SealedBid) Name() string { return "sealed-bid" }

// Collect implements Protocol.
func (SealedBid) Collect(rfb RFB, peers map[string]Peer, sp *obs.Span) ([]Offer, int, error) {
	round := roundSpan(sp, 1)
	offers := fanOut(rfb, peers, round)
	round.End()
	return offers, 1, nil
}

// IterativeBid announces the best standing price after each round and lets
// sellers undercut, up to MaxRounds or until prices stop moving (an open-cry
// descending auction).
type IterativeBid struct {
	MaxRounds int // total rounds including the initial sealed round
}

// Name implements Protocol.
func (p IterativeBid) Name() string { return "iterative-bid" }

// Collect implements Protocol.
func (p IterativeBid) Collect(rfb RFB, peers map[string]Peer, sp *obs.Span) ([]Offer, int, error) {
	rounds := p.MaxRounds
	if rounds < 1 {
		rounds = 3
	}
	round := roundSpan(sp, 1)
	offers := fanOut(rfb, peers, round)
	round.End()
	used := 1
	for used < rounds && len(offers) > 0 {
		req := ImproveReq{RFBID: rfb.RFBID, BuyerID: rfb.BuyerID, BestPrice: bestPrices(offers)}
		round = roundSpan(sp, used+1)
		improved := improveRound(req, peers, round)
		round.End()
		var changed bool
		offers, changed = mergeImproved(offers, improved)
		used++
		if !changed {
			break
		}
	}
	return offers, used, nil
}

// Bargain has the buyer counter-offer a target price below the best standing
// offer each round; sellers that can meet it (per their strategy) undercut.
type Bargain struct {
	MaxRounds int
	Buyer     BuyerStrategy
}

// Name implements Protocol.
func (p Bargain) Name() string { return "bargain" }

// Collect implements Protocol.
func (p Bargain) Collect(rfb RFB, peers map[string]Peer, sp *obs.Span) ([]Offer, int, error) {
	rounds := p.MaxRounds
	if rounds < 1 {
		rounds = 3
	}
	buyer := p.Buyer
	if buyer == nil {
		buyer = AnchoredBuyer{}
	}
	round := roundSpan(sp, 1)
	offers := fanOut(rfb, peers, round)
	round.End()
	used := 1
	for used < rounds && len(offers) > 0 {
		best := bestPrices(offers)
		target := make(map[string]float64, len(best))
		for qid, b := range best {
			target[qid] = buyer.CounterOffer(qid, b)
		}
		req := ImproveReq{RFBID: rfb.RFBID, BuyerID: rfb.BuyerID, BestPrice: best, Target: target}
		round = roundSpan(sp, used+1)
		improved := improveRound(req, peers, round)
		round.End()
		var changed bool
		offers, changed = mergeImproved(offers, improved)
		used++
		if !changed {
			break
		}
	}
	return offers, used, nil
}

// SelectWinners picks, for every query id, the standing offer with the best
// (lowest) price — the buyer's winner determination for simple valuations.
// Ties break deterministically by seller then offer id.
func SelectWinners(offers []Offer) map[string]Offer {
	winners := map[string]Offer{}
	for _, o := range offers {
		w, ok := winners[o.QID]
		if !ok || o.Price < w.Price ||
			(o.Price == w.Price && (o.SellerID < w.SellerID || (o.SellerID == w.SellerID && o.OfferID < w.OfferID))) {
			winners[o.QID] = o
		}
	}
	return winners
}
