package sqlparse

import (
	"math/rand"
	"testing"

	"qtrade/internal/expr"
	"qtrade/internal/value"
)

// randomExprAST builds a random expression tree directly from AST nodes,
// independent of the parser's own grammar, to cross-check the printer and
// parser against each other (print → parse → print must be a fixed point).
func randomExprAST(r *rand.Rand, depth int) expr.Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return expr.NewColumn("t", []string{"a", "b", "c"}[r.Intn(3)])
		case 1:
			return expr.NewColumn("", "bare")
		case 2:
			return expr.NewLit(value.NewInt(int64(r.Intn(100) - 50)))
		default:
			return expr.NewLit(value.NewStr([]string{"x", "it's", ""}[r.Intn(3)]))
		}
	}
	switch r.Intn(8) {
	case 0:
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		return &expr.Binary{Op: ops[r.Intn(len(ops))], L: randomExprAST(r, depth-1), R: randomExprAST(r, depth-1)}
	case 1:
		return &expr.Binary{Op: "AND", L: randomExprAST(r, depth-1), R: randomExprAST(r, depth-1)}
	case 2:
		return &expr.Binary{Op: "OR", L: randomExprAST(r, depth-1), R: randomExprAST(r, depth-1)}
	case 3:
		ops := []string{"+", "-", "*", "/", "%"}
		return &expr.Binary{Op: ops[r.Intn(len(ops))], L: randomExprAST(r, depth-1), R: randomExprAST(r, depth-1)}
	case 4:
		return &expr.Unary{Op: "NOT", X: randomExprAST(r, depth-1)}
	case 5:
		n := 1 + r.Intn(3)
		list := make([]expr.Expr, n)
		for i := range list {
			list[i] = expr.NewLit(value.NewInt(int64(i)))
		}
		return &expr.In{X: randomExprAST(r, depth-1), List: list, Not: r.Intn(2) == 0}
	case 6:
		return &expr.Between{
			X:   randomExprAST(r, depth-1),
			Lo:  expr.NewLit(value.NewInt(int64(r.Intn(10)))),
			Hi:  expr.NewLit(value.NewInt(int64(10 + r.Intn(10)))),
			Not: r.Intn(2) == 0,
		}
	default:
		return &expr.IsNull{X: randomExprAST(r, depth-1), Not: r.Intn(2) == 0}
	}
}

// Property: for random ASTs, String() is parseable and parsing is a fixed
// point of printing.
func TestQuickExprPrintParseFixedPoint(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	for i := 0; i < 1000; i++ {
		e := randomExprAST(r, 4)
		printed := e.String()
		parsed, err := ParseExpr(printed)
		if err != nil {
			t.Fatalf("printer emitted unparseable text %q (from %#v): %v", printed, e, err)
		}
		if parsed.String() != printed {
			t.Fatalf("not a fixed point:\n  ast:      %q\n  reparsed: %q", printed, parsed.String())
		}
	}
}

// Property: precedence is preserved — evaluating the original AST and the
// reparsed AST on random rows gives identical results.
func TestQuickExprReparseSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	schema := []expr.ColumnID{{Table: "t", Name: "a"}, {Table: "t", Name: "b"}, {Table: "t", Name: "c"}, {Name: "bare"}}
	for i := 0; i < 500; i++ {
		e := randomExprAST(r, 3)
		reparsed, err := ParseExpr(e.String())
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			row := value.Row{
				value.NewInt(int64(r.Intn(20) - 10)),
				value.NewInt(int64(r.Intn(20))),
				value.NewStr([]string{"x", "y"}[r.Intn(2)]),
				value.NewInt(int64(r.Intn(5))),
			}
			e1 := expr.Clone(e)
			e2 := expr.Clone(reparsed)
			if err := expr.Bind(e1, schema); err != nil {
				t.Fatal(err)
			}
			if err := expr.Bind(e2, schema); err != nil {
				t.Fatal(err)
			}
			v1, err1 := expr.Eval(e1, row)
			v2, err2 := expr.Eval(e2, row)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("eval error mismatch for %q: %v vs %v", e, err1, err2)
			}
			if err1 == nil && !value.Identical(v1, v2) && !(v1.IsNull() && v2.IsNull()) {
				t.Fatalf("semantics changed by reparse of %q: %v vs %v (row %v)", e, v1, v2, row)
			}
		}
	}
}
