package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp    // punctuation and operators
	tokParam // unused placeholder, kept for symmetry
)

// token is one lexeme with its position for error messages.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes SQL text. Identifiers and keywords are case-insensitive;
// keyword recognition happens in the parser via upper-cased text.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front (queries are short).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' {
				if seenDot {
					break
				}
				seenDot = true
				l.pos++
				continue
			}
			if ch < '0' || ch > '9' {
				if ch == 'e' || ch == 'E' {
					// exponent
					l.pos++
					if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
						l.pos++
					}
					continue
				}
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("sqlparse: unterminated string at %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}
	case c == '"':
		// Double-quoted identifier.
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], '"')
		if end < 0 {
			return token{}, fmt.Errorf("sqlparse: unterminated quoted identifier at %d", start)
		}
		text := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return token{kind: tokIdent, text: text, pos: start}, nil
	default:
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<>", "<=", ">=", "!=":
			l.pos += 2
			if two == "!=" {
				two = "<>"
			}
			return token{kind: tokOp, text: two, pos: start}, nil
		}
		switch c {
		case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.':
			l.pos++
			return token{kind: tokOp, text: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("sqlparse: unexpected character %q at %d", rune(c), start)
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
