package sqlparse

import (
	"math/rand"
	"strings"
	"testing"

	"qtrade/internal/expr"
	"qtrade/internal/value"
)

func TestParseSimpleSelect(t *testing.T) {
	s := MustParseSelect("SELECT custid, custname FROM customer WHERE office = 'Corfu'")
	if len(s.Items) != 2 || s.Items[0].Expr.String() != "custid" {
		t.Fatalf("items: %+v", s.Items)
	}
	if len(s.From) != 1 || s.From[0].Name != "customer" {
		t.Fatalf("from: %+v", s.From)
	}
	if s.Where.String() != "office = 'Corfu'" {
		t.Fatalf("where: %s", s.Where)
	}
	if s.Limit != -1 || s.Distinct {
		t.Fatal("defaults wrong")
	}
}

func TestParsePaperQuery(t *testing.T) {
	// The motivating query of the paper (total bills in Corfu and Myconos).
	q := `SELECT c.office, SUM(i.charge) AS total
	      FROM customer c, invoiceline i
	      WHERE c.custid = i.custid AND c.office IN ('Corfu', 'Myconos')
	      GROUP BY c.office`
	s := MustParseSelect(q)
	if len(s.From) != 2 || s.From[0].Binding() != "c" || s.From[1].Binding() != "i" {
		t.Fatalf("from: %+v", s.From)
	}
	if !s.HasAggregates() {
		t.Fatal("must detect aggregate")
	}
	if len(s.GroupBy) != 1 || s.GroupBy[0].String() != "c.office" {
		t.Fatalf("group by: %v", s.GroupBy)
	}
	if s.Items[1].Alias != "total" {
		t.Fatalf("alias: %+v", s.Items[1])
	}
}

func TestParseJoinSyntaxNormalized(t *testing.T) {
	s := MustParseSelect("SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y > 1")
	if len(s.From) != 2 {
		t.Fatalf("from: %+v", s.From)
	}
	conj := expr.Conjuncts(s.Where)
	if len(conj) != 2 {
		t.Fatalf("where conjuncts: %v", s.Where)
	}
	s2 := MustParseSelect("SELECT * FROM a INNER JOIN b ON a.x = b.x")
	if len(s2.From) != 2 || s2.Where == nil {
		t.Fatal("inner join")
	}
}

func TestParseUnion(t *testing.T) {
	u := MustParse("SELECT x FROM a UNION ALL SELECT x FROM b UNION ALL SELECT x FROM c").(*Union)
	if len(u.Inputs) != 3 || !u.All {
		t.Fatalf("union: %d all=%v", len(u.Inputs), u.All)
	}
	d := MustParse("SELECT x FROM a UNION SELECT x FROM b").(*Union)
	if d.All {
		t.Fatal("UNION without ALL must be distinct")
	}
	if _, err := Parse("SELECT x FROM a UNION SELECT x FROM b UNION ALL SELECT x FROM c"); err == nil {
		t.Fatal("mixed UNION/UNION ALL must error")
	}
}

func TestParseOrderLimitDistinct(t *testing.T) {
	s := MustParseSelect("SELECT DISTINCT x FROM a ORDER BY x DESC, y LIMIT 10")
	if !s.Distinct || s.Limit != 10 {
		t.Fatal("distinct/limit")
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatalf("order: %+v", s.OrderBy)
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []struct{ in, out string }{
		{"a.x = 1 AND b.y = 2 OR c.z = 3", "a.x = 1 AND b.y = 2 OR c.z = 3"},
		{"a.x = 1 AND (b.y = 2 OR c.z = 3)", "a.x = 1 AND (b.y = 2 OR c.z = 3)"},
		{"NOT a.x < 5", "NOT (a.x < 5)"},
		{"x BETWEEN 1 AND 10", "x BETWEEN 1 AND 10"},
		{"x NOT BETWEEN 1 AND 10", "x NOT BETWEEN 1 AND 10"},
		{"x IN (1, 2, 3)", "x IN (1, 2, 3)"},
		{"x NOT IN ('a')", "x NOT IN ('a')"},
		{"x IS NULL", "x IS NULL"},
		{"x IS NOT NULL", "x IS NOT NULL"},
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"-x + 1", "-(x) + 1"},
		{"-5", "-5"},
		{"1.5e2", "150"},
		{"x <> 'it''s'", "x <> 'it''s'"},
		{"x != 3", "x <> 3"},
		{"SUM(x) > 10", "SUM(x) > 10"},
		{"COUNT(*) = 1", "COUNT(*) = 1"},
		{"AVG(DISTINCT x) < 2.5", "AVG(DISTINCT x) < 2.5"},
		{"x % 3 = 0", "x % 3 = 0"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.in)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", c.in, err)
			continue
		}
		if e.String() != c.out {
			t.Errorf("ParseExpr(%q) = %q, want %q", c.in, e, c.out)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT x",
		"SELECT x FROM",
		"SELECT x FROM a WHERE",
		"SELECT x FROM a GROUP x",
		"SELECT x FROM a LIMIT -1",
		"SELECT x FROM a LIMIT y",
		"SELECT x FROM a trailing garbage (",
		"SELECT SUM(*) FROM a",
		"SELECT x FROM a WHERE x IN ()",
		"SELECT x FROM a WHERE x BETWEEN 1",
		"SELECT x FROM 'str'",
		"SELECT x FROM a WHERE 'unterminated",
		"SELECT x FROM a JOIN b",
		"SELECT x FROM a WHERE x IS 5",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) must fail", q)
		}
	}
}

func TestLexerQuotedIdentAndEscapes(t *testing.T) {
	s := MustParseSelect(`SELECT "Weird Name" FROM t WHERE x = 'o''clock'`)
	if s.Items[0].Expr.String() != "Weird Name" {
		t.Errorf("quoted ident: %s", s.Items[0].Expr)
	}
	lit := s.Where.(*expr.Binary).R.(*expr.Lit)
	if lit.V.S != "o'clock" {
		t.Errorf("escape: %q", lit.V.S)
	}
}

func TestRoundTripSQL(t *testing.T) {
	queries := []string{
		"SELECT * FROM customer",
		"SELECT c.office, SUM(i.charge) AS total FROM customer c, invoiceline i WHERE c.custid = i.custid GROUP BY c.office",
		"SELECT DISTINCT x AS y FROM a, b WHERE a.k = b.k ORDER BY x DESC LIMIT 5",
		"SELECT x FROM a UNION ALL SELECT x FROM b",
		"SELECT x FROM a UNION SELECT x FROM b",
		"SELECT x FROM a WHERE x BETWEEN 1 AND 2 AND y IN (1, 2) AND z IS NOT NULL",
		"SELECT x FROM a HAVING COUNT(*) > 1",
	}
	for _, q := range queries {
		s1 := MustParse(q)
		sql1 := s1.SQL()
		s2, err := Parse(sql1)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", sql1, err)
			continue
		}
		if s2.SQL() != sql1 {
			t.Errorf("round trip unstable:\n  1: %s\n  2: %s", sql1, s2.SQL())
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := MustParseSelect("SELECT x FROM a WHERE x = 1 GROUP BY x HAVING COUNT(*) > 1 ORDER BY x")
	c := s.Clone()
	c.Where.(*expr.Binary).Op = ">"
	c.From[0].Name = "zzz"
	if s.Where.(*expr.Binary).Op != "=" || s.From[0].Name != "a" {
		t.Fatal("Clone must be deep for exprs and from list")
	}
	if c.SQL() == s.SQL() {
		t.Fatal("clone should have diverged")
	}
}

func TestTableBindingsAndFindFrom(t *testing.T) {
	s := MustParseSelect("SELECT * FROM customer c, invoiceline")
	b := s.TableBindings()
	if !b["c"] || !b["invoiceline"] || len(b) != 2 {
		t.Fatalf("bindings: %v", b)
	}
	if s.FindFrom("C") == nil || s.FindFrom("customer") != nil {
		t.Fatal("FindFrom must match binding, not base name, case-insensitively")
	}
}

func TestAliasWithoutAS(t *testing.T) {
	s := MustParseSelect("SELECT x total FROM t alias1")
	if s.Items[0].Alias != "total" || s.From[0].Alias != "alias1" {
		t.Fatalf("aliases: %+v %+v", s.Items[0], s.From[0])
	}
}

func TestNumbersAndLiterals(t *testing.T) {
	e := MustParseExpr("x = 2.5")
	lit := e.(*expr.Binary).R.(*expr.Lit)
	if lit.V.K != value.Float || lit.V.F != 2.5 {
		t.Fatalf("float literal: %+v", lit.V)
	}
	e = MustParseExpr("x = NULL")
	if !e.(*expr.Binary).R.(*expr.Lit).V.IsNull() {
		t.Fatal("NULL literal")
	}
	e = MustParseExpr("x = TRUE AND y = FALSE")
	if !strings.Contains(e.String(), "TRUE") {
		t.Fatal("bool literals")
	}
}

// randomSelect builds a random valid query and checks print->parse->print
// stability (property test for the printer/parser pair).
func TestQuickRoundTripRandomQueries(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tables := []string{"customer", "invoiceline", "orders"}
	cols := []string{"a", "b", "c"}
	randExpr := func() string {
		tbl := tables[r.Intn(3)][:1]
		c := tbl + "." + cols[r.Intn(3)]
		switch r.Intn(4) {
		case 0:
			return c + " = " + []string{"1", "'x'", "2.5"}[r.Intn(3)]
		case 1:
			return c + " IN (1, 2)"
		case 2:
			return c + " BETWEEN 1 AND 9"
		default:
			return c + " IS NOT NULL"
		}
	}
	for i := 0; i < 200; i++ {
		var sb strings.Builder
		sb.WriteString("SELECT ")
		n := 1 + r.Intn(3)
		for j := 0; j < n; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(tables[j%3][:1] + "." + cols[r.Intn(3)])
		}
		sb.WriteString(" FROM ")
		for j := 0; j < n; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(tables[j%3] + " " + tables[j%3][:1])
		}
		if r.Intn(2) == 0 {
			sb.WriteString(" WHERE " + randExpr())
			if r.Intn(2) == 0 {
				sb.WriteString(" AND " + randExpr())
			}
		}
		q := sb.String()
		s1, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		s2, err := Parse(s1.SQL())
		if err != nil {
			t.Fatalf("re-parse %q: %v", s1.SQL(), err)
		}
		if s1.SQL() != s2.SQL() {
			t.Fatalf("unstable round trip: %q vs %q", s1.SQL(), s2.SQL())
		}
	}
}
