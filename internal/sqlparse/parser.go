package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"qtrade/internal/expr"
	"qtrade/internal/value"
)

// keywords that cannot be used as bare aliases.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true, "GROUP": true,
	"BY": true, "HAVING": true, "ORDER": true, "LIMIT": true, "UNION": true,
	"ALL": true, "AS": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"BETWEEN": true, "IS": true, "NULL": true, "JOIN": true, "INNER": true,
	"ON": true, "TRUE": true, "FALSE": true, "ASC": true, "DESC": true,
}

// aggregate function names.
var aggFns = map[string]bool{"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
	src  string
}

// Parse parses a full statement (SELECT or UNION chain).
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	first, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	var inputs []*Select
	all := false
	sawAll := false
	for p.isKeyword("UNION") {
		p.i++
		if p.isKeyword("ALL") {
			p.i++
			if len(inputs) > 0 && !all && sawAll {
				return nil, p.errf("mixed UNION and UNION ALL are not supported")
			}
			all = true
		} else if sawAll && all {
			return nil, p.errf("mixed UNION and UNION ALL are not supported")
		}
		sawAll = true
		if len(inputs) == 0 {
			inputs = append(inputs, first)
		}
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, next)
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	if len(inputs) > 0 {
		return &Union{Inputs: inputs, All: all}, nil
	}
	return first, nil
}

// ParseSelect parses a statement and requires it to be a single SELECT.
func ParseSelect(src string) (*Select, error) {
	s, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := s.(*Select)
	if !ok {
		return nil, fmt.Errorf("sqlparse: expected a single SELECT, got a UNION")
	}
	return sel, nil
}

// MustParse parses or panics; for tests and fixed internal queries.
func MustParse(src string) Stmt {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// MustParseSelect parses a single SELECT or panics.
func MustParseSelect(src string) *Select {
	s, err := ParseSelect(src)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseExpr parses a standalone scalar expression (used in tests and for
// partition predicates in catalog definitions).
func ParseExpr(src string) (expr.Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return e, nil
}

// MustParseExpr parses an expression or panics.
func MustParseExpr(src string) expr.Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) peek() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return token{kind: tokEOF}
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: %s (near position %d in %q)", fmt.Sprintf(format, args...), p.cur().pos, truncate(p.src))
}

func truncate(s string) string {
	if len(s) > 80 {
		return s[:77] + "..."
	}
	return s
}

func (p *parser) isKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) isOp(op string) bool {
	t := p.cur()
	return t.kind == tokOp && t.text == op
}

func (p *parser) acceptOp(op string) bool {
	if p.isOp(op) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q", op)
	}
	return nil
}

func (p *parser) expectEOF() error {
	if p.cur().kind != tokEOF {
		return p.errf("unexpected trailing input %q", p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.i++
	return t.text, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &Select{Limit: -1}
	s.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	var joinConds []expr.Expr
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, tr)
		for {
			if p.acceptKeyword("INNER") {
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
			} else if !p.acceptKeyword("JOIN") {
				break
			}
			tr2, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, tr2)
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			joinConds = append(joinConds, cond)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		joinConds = append(joinConds, w)
	}
	s.Where = expr.And(joinConds)
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, g)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, p.errf("expected LIMIT count")
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		p.i++
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if t := p.cur(); t.kind == tokIdent && !keywords[strings.ToUpper(t.text)] {
		item.Alias = t.text
		p.i++
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	if t := p.cur(); t.kind == tokIdent && keywords[strings.ToUpper(t.text)] {
		return TableRef{}, p.errf("expected table name, got keyword %q", t.text)
	}
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: name}
	if p.acceptKeyword("AS") {
		a, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a
	} else if t := p.cur(); t.kind == tokIdent && !keywords[strings.ToUpper(t.text)] {
		tr.Alias = t.text
		p.i++
	}
	return tr, nil
}

// Expression grammar: OR > AND > NOT > comparison > additive > multiplicative
// > unary > primary.

func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (expr.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isOp("=") || p.isOp("<>") || p.isOp("<") || p.isOp("<=") || p.isOp(">") || p.isOp(">="):
			op := p.cur().text
			p.i++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &expr.Binary{Op: op, L: l, R: r}
		case p.isKeyword("IS"):
			p.i++
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			l = &expr.IsNull{X: l, Not: not}
		case p.isKeyword("IN"), p.isKeyword("NOT") && strings.EqualFold(p.peek().text, "IN"):
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("IN"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var list []expr.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			l = &expr.In{X: l, List: list, Not: not}
		case p.isKeyword("BETWEEN"), p.isKeyword("NOT") && strings.EqualFold(p.peek().text, "BETWEEN"):
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("BETWEEN"); err != nil {
				return nil, err
			}
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &expr.Between{X: l, Lo: lo, Hi: hi, Not: not}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.isOp("+") || p.isOp("-") {
		op := p.cur().text
		p.i++
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isOp("*") || p.isOp("/") || p.isOp("%") {
		op := p.cur().text
		p.i++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*expr.Lit); ok {
			switch lit.V.K {
			case value.Int:
				return expr.NewLit(value.NewInt(-lit.V.I)), nil
			case value.Float:
				return expr.NewLit(value.NewFloat(-lit.V.F)), nil
			}
		}
		return &expr.Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.i++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return expr.NewLit(value.NewFloat(f)), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return expr.NewLit(value.NewInt(n)), nil
	case tokString:
		p.i++
		return expr.NewLit(value.NewStr(t.text)), nil
	case tokOp:
		if t.text == "(" {
			p.i++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %q", t.text)
	case tokIdent:
		upper := strings.ToUpper(t.text)
		switch upper {
		case "NULL":
			p.i++
			return expr.NewLit(value.NewNull()), nil
		case "TRUE":
			p.i++
			return expr.TrueExpr(), nil
		case "FALSE":
			p.i++
			return expr.FalseExpr(), nil
		}
		if aggFns[upper] && p.peek().kind == tokOp && p.peek().text == "(" {
			return p.parseAgg(upper)
		}
		p.i++
		if p.acceptOp(".") {
			colName, err := p.ident()
			if err != nil {
				return nil, err
			}
			return expr.NewColumn(t.text, colName), nil
		}
		return expr.NewColumn("", t.text), nil
	}
	return nil, p.errf("unexpected token")
}

func (p *parser) parseAgg(fn string) (expr.Expr, error) {
	p.i++ // function name
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if p.acceptOp("*") {
		if fn != "COUNT" {
			return nil, p.errf("%s(*) is not valid", fn)
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &expr.Agg{Fn: fn, Star: true}, nil
	}
	distinct := p.acceptKeyword("DISTINCT")
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &expr.Agg{Fn: fn, Arg: arg, Distinct: distinct}, nil
}
