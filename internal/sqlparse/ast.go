// Package sqlparse implements the SQL subset used by the query trading
// engine: select-project-join blocks with aggregation, grouping, ordering and
// UNION [ALL], i.e. the query class the paper optimizes. It provides a lexer,
// a recursive-descent parser producing expr-based ASTs, and an SQL printer so
// queries can be shipped between nodes as text (the trading messages carry
// SQL, exactly as in the paper's examples).
package sqlparse

import (
	"strconv"
	"strings"

	"qtrade/internal/expr"
)

// Stmt is a parsed query: either *Select or *Union.
type Stmt interface {
	// SQL renders the statement back to parseable SQL text.
	SQL() string
	stmt()
}

// SelectItem is one projection of a SELECT list. Star marks a bare `*`.
type SelectItem struct {
	Expr  expr.Expr
	Alias string
	Star  bool
}

// TableRef is a FROM-list entry. Alias is the exposed name (defaults to the
// table name when no alias was written).
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name by which columns reference this table.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// Select is a single SPJ(+aggregate) block. JOIN ... ON syntax is normalized
// at parse time into the FROM list plus WHERE conjuncts. Limit is -1 when
// absent.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    expr.Expr
	GroupBy  []expr.Expr
	Having   expr.Expr
	OrderBy  []OrderItem
	Limit    int64
}

// Union is a UNION or UNION ALL chain of SELECT blocks.
type Union struct {
	Inputs []*Select
	All    bool
}

func (*Select) stmt() {}
func (*Union) stmt()  {}

// SQL renders the select block.
func (s *Select) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.Star {
			sb.WriteString("*")
			continue
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(it.Alias)
		}
	}
	sb.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.Name)
		if t.Alias != "" && !strings.EqualFold(t.Alias, t.Name) {
			sb.WriteString(" ")
			sb.WriteString(t.Alias)
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.FormatInt(s.Limit, 10))
	}
	return sb.String()
}

// SQL renders the union chain.
func (u *Union) SQL() string {
	sep := " UNION "
	if u.All {
		sep = " UNION ALL "
	}
	parts := make([]string, len(u.Inputs))
	for i, s := range u.Inputs {
		parts[i] = s.SQL()
	}
	return strings.Join(parts, sep)
}

// Clone deep-copies the select block.
func (s *Select) Clone() *Select {
	out := &Select{Distinct: s.Distinct, Limit: s.Limit}
	for _, it := range s.Items {
		ni := SelectItem{Alias: it.Alias, Star: it.Star}
		if it.Expr != nil {
			ni.Expr = expr.Clone(it.Expr)
		}
		out.Items = append(out.Items, ni)
	}
	out.From = append(out.From, s.From...)
	if s.Where != nil {
		out.Where = expr.Clone(s.Where)
	}
	for _, g := range s.GroupBy {
		out.GroupBy = append(out.GroupBy, expr.Clone(g))
	}
	if s.Having != nil {
		out.Having = expr.Clone(s.Having)
	}
	for _, o := range s.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderItem{Expr: expr.Clone(o.Expr), Desc: o.Desc})
	}
	return out
}

// HasAggregates reports whether any select item or HAVING uses an aggregate.
func (s *Select) HasAggregates() bool {
	for _, it := range s.Items {
		if it.Expr != nil && expr.HasAgg(it.Expr) {
			return true
		}
	}
	return s.Having != nil && expr.HasAgg(s.Having)
}

// TableBindings returns the lower-cased set of FROM bindings (alias or name).
func (s *Select) TableBindings() map[string]bool {
	out := map[string]bool{}
	for _, t := range s.From {
		out[strings.ToLower(t.Binding())] = true
	}
	return out
}

// FindFrom returns the FROM entry whose binding matches name (case
// insensitive), or nil.
func (s *Select) FindFrom(name string) *TableRef {
	for i := range s.From {
		if strings.EqualFold(s.From[i].Binding(), name) {
			return &s.From[i]
		}
	}
	return nil
}
