package qtrade

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qtrade/internal/flight"
)

// TestWithFlightRecorderEndToEnd drives real queries through the public API
// and checks that every completed execution lands as one dossier, complete
// with ledger events, operator actuals, and both span trees, and that the
// HTTP surface serves it back.
func TestWithFlightRecorderEndToEnd(t *testing.T) {
	fed := buildLedgerFed(t, []FederationOption{WithFlightRecorder(8)})
	if fed.FlightRecorder() == nil {
		t.Fatal("WithFlightRecorder did not attach a recorder")
	}
	if fed.Ledger() == nil {
		t.Fatal("flight recorder did not auto-attach a default ledger")
	}

	res, err := fed.Query("hq", totalsQuery, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}

	ds := fed.SlowQueries(10)
	if len(ds) != 1 {
		t.Fatalf("dossiers: %d", len(ds))
	}
	d := ds[0]
	// The dossier stores the parser's rendering of the query, not the raw text.
	if !strings.Contains(d.SQL, "SUM(i.charge)") || d.Buyer != "hq" {
		t.Fatalf("dossier identity: %q buyer %q", d.SQL, d.Buyer)
	}
	if d.WallMS <= 0 || d.OptimizeMS <= 0 || d.ExecMS <= 0 {
		t.Fatalf("dossier walls: %+v", d)
	}
	if d.Rows != 2 {
		t.Fatalf("dossier rows: %d", d.Rows)
	}
	if len(d.Ledger.Events) == 0 {
		t.Fatal("dossier carries no ledger events")
	}
	if len(d.Operators) == 0 {
		t.Fatal("dossier carries no operator stats")
	}
	if len(d.Spans) != 2 {
		t.Fatalf("span roots: %d", len(d.Spans))
	}

	// The detail endpoint serves the full dossier as JSON.
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/debug/queries/"+d.ID, nil)
	fed.FlightRecorder().ServeHTTP(rr, req)
	if rr.Code != 200 {
		t.Fatalf("detail status %d: %s", rr.Code, rr.Body.String())
	}
	var got flight.Dossier
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("detail not JSON: %v", err)
	}
	if got.ID != d.ID || got.Rows != 2 {
		t.Fatalf("detail mismatch: %+v", got)
	}

	// The list endpoint summarizes it.
	rr = httptest.NewRecorder()
	fed.FlightRecorder().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/queries", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), d.ID) {
		t.Fatalf("list status %d missing %s", rr.Code, d.ID)
	}
}

// TestWithSlowQuerySLO pins that a query breaching the public SLO option is
// flagged into the outlier set with the slow trigger.
func TestWithSlowQuerySLO(t *testing.T) {
	fed := buildLedgerFed(t, []FederationOption{WithSlowQuerySLO(time.Nanosecond)})
	if _, err := fed.Query("hq", totalsQuery); err != nil {
		t.Fatal(err)
	}
	out := fed.FlightRecorder().Outliers()
	if len(out) != 1 {
		t.Fatalf("outliers: %d", len(out))
	}
	found := false
	for _, tr := range out[0].Triggers {
		if tr == flight.TrigSlow {
			found = true
		}
	}
	if !found {
		t.Fatalf("triggers: %v", out[0].Triggers)
	}
}

// TestQueryWithRecoveryDossier pins that the public recovery path produces a
// single dossier whose recovery chain names the failed seller, flagged as an
// outlier by the recovery trigger.
func TestQueryWithRecoveryDossier(t *testing.T) {
	// Topology where every answer the victim can sell has a substitute: the
	// customer partitions live on one store node, invoiceline is replicated
	// on two dedicated nodes, and the buyer holds nothing.
	sch := NewSchema()
	sch.MustTable("customer",
		Col("custid", Int), Col("custname", Str), Col("office", Str))
	sch.MustTable("invoiceline",
		Col("invid", Int), Col("linenum", Int), Col("custid", Int), Col("charge", Float))
	sch.MustPartition("customer",
		Part("corfu", "office = 'Corfu'"),
		Part("myconos", "office = 'Myconos'"))
	fed := NewFederation(sch, WithFlightRecorder(8))
	store := fed.MustAddNode("store")
	store.MustCreateFragment("customer", "corfu")
	store.MustInsert("customer", "corfu", Row(1, "alice", "Corfu"), Row(2, "bob", "Corfu"))
	store.MustCreateFragment("customer", "myconos")
	store.MustInsert("customer", "myconos", Row(3, "carol", "Myconos"), Row(5, "eve", "Myconos"))
	lines := [][]any{
		{100, 1, 1, 10.0}, {100, 2, 1, 5.0}, {101, 1, 2, 7.0},
		{102, 1, 3, 20.0}, {103, 1, 5, 2.0},
	}
	for _, id := range []string{"dup1", "dup2"} {
		n := fed.MustAddNode(id)
		n.MustCreateFragment("invoiceline", "p0")
		for _, r := range lines {
			n.MustInsert("invoiceline", "p0", Row(r...))
		}
	}
	fed.MustAddNode("hq")
	// A fault policy arms the cheap recovery path: standing-offer
	// substitution instead of a full re-optimization.
	fed.EnableFaultTolerance(FaultTolerance{
		CallTimeout:  500 * time.Millisecond,
		RoundTimeout: time.Second,
		MaxRetries:   2,
		Backoff:      time.Millisecond,
	})

	p, err := fed.Optimize("hq", totalsQuery)
	if err != nil {
		t.Fatal(err)
	}
	// Crash the invoiceline seller right after it accepts its award: it dies
	// between winning the negotiation and delivering, forcing standing-offer
	// recovery to substitute the replica.
	var victim string
	for _, pu := range p.Purchases() {
		if strings.Contains(pu.SQL, "invoiceline") {
			victim = pu.Seller
			break
		}
	}
	if victim != "dup1" && victim != "dup2" {
		t.Fatalf("invoiceline seller: %q (purchases %v)", victim, p.Purchases())
	}
	fed.SetFaultPlan(&FaultPlan{Seed: 7, CrashAfterAward: map[string]bool{victim: true}})
	res, err := fed.QueryWithRecovery("hq", totalsQuery, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	ds := fed.SlowQueries(10)
	// One dossier per top-level query: the earlier Optimize never executed, so
	// only QueryWithRecovery's negotiation finalized.
	if len(ds) != 1 {
		t.Fatalf("dossiers: %d", len(ds))
	}
	d := ds[0]
	if len(d.Recoveries) == 0 {
		t.Fatalf("no recovery records: %+v", d)
	}
	if d.Recoveries[0].Failed != victim {
		t.Fatalf("recovery failed=%q want %q", d.Recoveries[0].Failed, victim)
	}
	flagged := false
	for _, tr := range d.Triggers {
		if tr == flight.TrigRecovery {
			flagged = true
		}
	}
	if !flagged {
		t.Fatalf("triggers: %v", d.Triggers)
	}
}

// TestWithMetricsHistoryEndToEnd spins a tight sampling window, runs queries,
// and checks windows accumulate, serve over HTTP, and feed the watchdog.
func TestWithMetricsHistoryEndToEnd(t *testing.T) {
	fed := buildLedgerFed(t, []FederationOption{
		WithLedger(64), WithMetricsHistory(10*time.Millisecond, 16)})
	h := fed.MetricsHistory()
	if h == nil {
		t.Fatal("WithMetricsHistory did not attach a history")
	}
	defer h.Stop()
	if fed.Watchdog() == nil {
		t.Fatal("WithMetricsHistory did not attach a watchdog")
	}

	if _, err := fed.Query("hq", totalsQuery); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(h.Windows(0)) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	wins := h.Windows(0)
	if len(wins) < 2 {
		t.Fatalf("windows: %d", len(wins))
	}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics/history?n=2", nil))
	if rr.Code != 200 {
		t.Fatalf("history status %d", rr.Code)
	}
	var payload struct {
		Windows []struct {
			Seq int64 `json:"seq"`
		} `json:"windows"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatalf("history not JSON: %v", err)
	}
	if len(payload.Windows) != 2 {
		t.Fatalf("served windows: %d", len(payload.Windows))
	}
	// A healthy run may or may not surface anomalies; the accessor just has
	// to be callable while the sampler runs.
	_ = fed.Watchdog().Anomalies()
}

// TestFlightDisabledByDefault pins the off switch: a plain federation has a
// nil recorder/history/watchdog and every accessor no-ops.
func TestFlightDisabledByDefault(t *testing.T) {
	fed := buildLedgerFed(t, nil)
	if fed.FlightRecorder() != nil || fed.MetricsHistory() != nil || fed.Watchdog() != nil {
		t.Fatal("observability attached without options")
	}
	if ds := fed.SlowQueries(5); ds != nil {
		t.Fatalf("SlowQueries on nil recorder: %v", ds)
	}
	if _, err := fed.Query("hq", totalsQuery); err != nil {
		t.Fatal(err)
	}
	if ds := fed.SlowQueries(5); ds != nil {
		t.Fatalf("dossiers admitted without recorder: %v", ds)
	}
}
