package qtrade

import (
	"strings"
	"testing"
)

// buildFed builds the paper's three-office federation through the public
// API.
func buildFed(t *testing.T, opts ...NodeOption) *Federation {
	t.Helper()
	sch := NewSchema()
	sch.MustTable("customer",
		Col("custid", Int), Col("custname", Str), Col("office", Str))
	sch.MustTable("invoiceline",
		Col("invid", Int), Col("linenum", Int), Col("custid", Int), Col("charge", Float))
	sch.MustPartition("customer",
		Part("corfu", "office = 'Corfu'"),
		Part("myconos", "office = 'Myconos'"),
		Part("athens", "office = 'Athens'"))

	fed := NewFederation(sch)
	offices := map[string][][]any{
		"corfu":   {{1, "alice", "Corfu"}, {2, "bob", "Corfu"}},
		"myconos": {{3, "carol", "Myconos"}, {5, "eve", "Myconos"}},
		"athens":  {{4, "dave", "Athens"}},
	}
	lines := [][]any{
		{100, 1, 1, 10.0}, {100, 2, 1, 5.0}, {101, 1, 2, 7.0},
		{102, 1, 3, 20.0}, {103, 1, 5, 2.0}, {104, 1, 4, 100.0},
	}
	for id, custRows := range offices {
		n := fed.MustAddNode(id, opts...)
		n.MustCreateFragment("customer", id)
		for _, r := range custRows {
			n.MustInsert("customer", id, Row(r...))
		}
		if id != "athens" {
			n.MustCreateFragment("invoiceline", "p0")
			for _, r := range lines {
				n.MustInsert("invoiceline", "p0", Row(r...))
			}
		}
	}
	fed.MustAddNode("hq", opts...)
	return fed
}

const totalsQuery = `SELECT c.office, SUM(i.charge) AS total
	FROM customer c, invoiceline i
	WHERE c.custid = i.custid AND c.office IN ('Corfu', 'Myconos')
	GROUP BY c.office ORDER BY c.office`

func TestPublicAPIQuery(t *testing.T) {
	fed := buildFed(t)
	res, err := fed.Query("hq", totalsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Columns[0] != "c.office" || res.Columns[1] != "total" {
		t.Fatalf("columns: %v", res.Columns)
	}
	if res.Rows[0][0] != "Corfu" || res.Rows[0][1].(float64) != 22 {
		t.Fatalf("corfu row: %v", res.Rows[0])
	}
	if res.Rows[1][0] != "Myconos" || res.Rows[1][1].(float64) != 22 {
		t.Fatalf("myconos row: %v", res.Rows[1])
	}
}

func TestPublicAPIOptimizeExplain(t *testing.T) {
	fed := buildFed(t)
	p, err := fed.Optimize("hq", totalsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if p.EstimatedResponseTime() <= 0 || p.Iterations() < 1 {
		t.Fatalf("plan metrics: %f %d", p.EstimatedResponseTime(), p.Iterations())
	}
	if !strings.Contains(p.Explain(), "Remote[") {
		t.Fatalf("explain: %s", p.Explain())
	}
	buys := p.Purchases()
	if len(buys) == 0 {
		t.Fatal("no purchases")
	}
	sellers := map[string]bool{}
	for _, b := range buys {
		sellers[b.Seller] = true
		if b.Price < 0 || b.SQL == "" {
			t.Fatalf("purchase: %+v", b)
		}
	}
	if !sellers["corfu"] || !sellers["myconos"] {
		t.Fatalf("sellers: %v", sellers)
	}
	res, err := p.Run()
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("run: %v %v", res, err)
	}
}

func TestPublicAPIOptions(t *testing.T) {
	fed := buildFed(t, WithStrategy(Competitive))
	for _, mode := range []string{"dp", "idp", "greedy"} {
		res, err := fed.Query("hq", totalsQuery, WithPlanGenerator(mode))
		if err != nil || len(res.Rows) != 2 {
			t.Fatalf("mode %s: %v %v", mode, res, err)
		}
	}
	for _, proto := range []string{"sealed", "iterative", "bargain"} {
		res, err := fed.Query("hq", totalsQuery, WithProtocol(proto), WithMaxIterations(2))
		if err != nil || len(res.Rows) != 2 {
			t.Fatalf("protocol %s: %v %v", proto, res, err)
		}
	}
}

func TestPublicAPINetworkStats(t *testing.T) {
	fed := buildFed(t)
	fed.ResetNetworkStats()
	if _, err := fed.Query("hq", totalsQuery); err != nil {
		t.Fatal(err)
	}
	msgs, bytes := fed.NetworkStats()
	if msgs == 0 || bytes == 0 {
		t.Fatal("stats must be counted")
	}
}

func TestPublicAPINodeDown(t *testing.T) {
	fed := buildFed(t)
	fed.SetNodeDown("corfu", true)
	res, err := fed.Query("hq",
		"SELECT c.custname FROM customer c WHERE c.office = 'Myconos'")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("myconos query with corfu down: %v %v", res, err)
	}
}

func TestPublicAPIErrors(t *testing.T) {
	fed := buildFed(t)
	if _, err := fed.Query("ghost", totalsQuery); err == nil {
		t.Fatal("unknown buyer must error")
	}
	if _, err := fed.Query("hq", "not sql"); err == nil {
		t.Fatal("bad SQL must error")
	}
	if _, err := fed.AddNode("hq"); err == nil {
		t.Fatal("duplicate node must error")
	}
	n := fed.Node("hq")
	if n == nil || n.ID() != "hq" {
		t.Fatal("node lookup")
	}
	if err := n.CreateFragment("ghost", "p0"); err == nil {
		t.Fatal("unknown table must error")
	}
	sch := NewSchema()
	if err := sch.Partition("nope", Part("a", "x = 1")); err == nil {
		t.Fatal("partitioning unknown table must error")
	}
	if err := sch.Table("t", Col("x", Int)); err != nil {
		t.Fatal(err)
	}
	if err := sch.Partition("t", Part("a", "not a predicate ((")); err == nil {
		t.Fatal("bad predicate must error")
	}
}

func TestPublicAPIRowConversion(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsupported type must panic")
		}
	}()
	r := Row(1, int64(2), 3.5, "x", true, nil)
	if len(r) != 6 || !r[5].IsNull() {
		t.Fatalf("row: %v", r)
	}
	Row(struct{}{})
}

func TestPublicAPIQueryWithRecovery(t *testing.T) {
	fed := buildFed(t)
	// Healthy path.
	res, err := fed.QueryWithRecovery("hq", totalsQuery, 2)
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("recovery healthy: %v %v", res, err)
	}
	if _, err := fed.QueryWithRecovery("ghost", totalsQuery, 1); err == nil {
		t.Fatal("unknown buyer must error")
	}
}

func TestPublicAPIUnionQuery(t *testing.T) {
	fed := buildFed(t)
	// UNION executes through a complete-coverage seller.
	res, err := fed.Query("hq", `SELECT c.custname FROM customer c WHERE c.office = 'Corfu'`)
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("sanity: %v %v", res, err)
	}
}

func TestPublicAPIViews(t *testing.T) {
	fed := buildFed(t)
	n := fed.Node("corfu")
	err := n.AddView("totals",
		"SELECT c.office, c.custid, SUM(i.charge) AS total FROM customer c, invoiceline i WHERE c.custid = i.custid GROUP BY c.office, c.custid",
		[]Column{Col("office", Str), Col("custid", Int), Col("total", Float)},
		Row("Corfu", 1, 15.0), Row("Corfu", 2, 7.0))
	if err != nil {
		t.Fatal(err)
	}
	// The view-backed offer should win for the matching aggregation query.
	p, err := fed.Optimize("hq",
		"SELECT c.office, SUM(i.charge) AS total FROM customer c, invoiceline i WHERE c.custid = i.custid GROUP BY c.office")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range p.Purchases() {
		if strings.Contains(b.SQL, "totals") {
			found = true
		}
	}
	if !found {
		t.Logf("view offer did not win (allowed), plan:\n%s", p.Explain())
	}
}
