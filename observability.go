package qtrade

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"qtrade/internal/core"
	"qtrade/internal/exec"
	"qtrade/internal/obs"
)

// WithTrace records one span tree for the optimization: the buyer's
// iterations, the negotiation rounds with one sub-span per seller RFB, every
// seller's rewrite/DP pricing, plan generation, the predicates analyser, and
// the final awards. Retrieve it with Plan.Trace(). Tracing is strictly
// opt-in; without this option the instrumented paths reduce to nil checks.
//
// The trace is federation-wide: each RFB carries a trace context, sellers
// record their pricing (and any Depth-1 subcontract negotiation) into a span
// subtree shipped back with their offers, and the buyer grafts those
// subtrees under the matching "RequestBids <seller>" span with a
// Cristian-style clock-offset correction — so one negotiation renders as one
// tree even when the sellers are separate processes (see netsim.RPCPeer).
func WithTrace() OptimizeOption {
	return func(c *core.Config) { c.Tracer = obs.NewTracer() }
}

// Sampling is a trace sampling policy for WithTraceSampling. The zero value
// samples every negotiation.
type Sampling struct {
	mode       obs.SampleMode
	ratio      float64
	seed       int64
	tailSlower time.Duration
}

// SampleAlways traces every negotiation (the WithTrace default).
func SampleAlways() Sampling { return Sampling{mode: obs.SampleAlways} }

// SampleNever traces nothing: no buyer spans are retained and no trace
// context ships on the wire, so offers are byte-identical to an untraced run.
func SampleNever() Sampling { return Sampling{mode: obs.SampleNever} }

// SampleRatio traces a pseudo-random fraction p (0..1) of negotiations.
func SampleRatio(p float64) Sampling { return Sampling{mode: obs.SampleRatio, ratio: p} }

// Seeded pins the ratio sampler's random stream for reproducible runs.
func (s Sampling) Seeded(seed int64) Sampling { s.seed = seed; return s }

// KeepSlower adds tail sampling: negotiations slower than d are kept even
// when the head decision said no. Spans are then always collected on the
// wire (the decision to keep can only be made once the wall time is known),
// so combine with SampleRatio when wire overhead matters.
func (s Sampling) KeepSlower(d time.Duration) Sampling { s.tailSlower = d; return s }

// WithTraceSampling is WithTrace under a sampling policy: the head decision
// is taken once per optimization and propagated federation-wide in the trace
// context, so sellers skip payload collection entirely for unsampled
// negotiations. Plan.Trace() renders empty when the negotiation was not
// kept. The policy (and its random stream) lives in the returned option —
// store the option and reuse it across queries so SampleRatio converges on
// the requested fraction.
func WithTraceSampling(s Sampling) OptimizeOption {
	pol := &obs.Sampling{Mode: s.mode, Ratio: s.ratio, Seed: s.seed, TailSlower: s.tailSlower}
	return func(c *core.Config) {
		c.Tracer = obs.NewTracer()
		c.Sampling = pol
	}
}

// Trace is the recorded span forest of one traced optimization (and, if the
// plan was executed, its execution). The zero Trace of an untraced plan is
// valid and renders empty.
type Trace struct{ tr *obs.Tracer }

// WriteChromeTrace exports the trace in Chrome trace_event JSON, loadable
// in chrome://tracing or https://ui.perfetto.dev: each node becomes its own
// named track on a shared microsecond timeline.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return (*obs.Tracer)(nil).WriteChromeTrace(w)
	}
	return t.tr.WriteChromeTrace(w)
}

// WriteJSONL exports the trace as one JSON object per span, depth-first,
// each line carrying the span's path, source node, start and duration.
func (t *Trace) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.tr.WriteJSONL(w)
}

// Text renders the trace as an indented tree with durations and attributes.
func (t *Trace) Text() string {
	if t == nil {
		return ""
	}
	return t.tr.RenderText()
}

// Trace returns the spans recorded for this plan. Empty unless the plan was
// optimized with WithTrace.
func (p *Plan) Trace() *Trace { return &Trace{tr: p.tracer} }

// ExplainAnalyze executes the plan with per-operator profiling and renders
// the tree with actual rows, input rows and wall time next to the plan
// generator's estimates — the federation's EXPLAIN ANALYZE. Like its
// namesake, it really runs the query (purchased answers are fetched from
// their sellers).
func (p *Plan) ExplainAnalyze() (string, error) {
	if p.tracer != nil && !p.sampled {
		p.fed.setNodeTracer(p.tracer)
		defer p.fed.setNodeTracer(nil)
	}
	st := exec.NewRunStats()
	ex := &exec.Executor{Store: p.fed.nodes[p.buyer].inner.Store(), Stats: st}
	tr := p.tracer
	if p.sampled && !p.res.TraceCtx.Sampled {
		tr = nil
	}
	if _, err := core.ExecuteResultTraced(&core.NetComm{Net: p.fed.net, SelfID: p.buyer}, ex, p.res, tr); err != nil {
		return "", err
	}
	return core.ExplainAnalyze(p.res, st), nil
}

// Stats reports what the optimization cost, including the seller-side
// counters (offers priced, view-derived offers, empty bid responses).
func (p *Plan) Stats() core.Stats { return p.res.Stats }

// MetricsSnapshot renders every federation metric as sorted "name value"
// lines: per-buyer counters and timing histograms ("buyer.<id>.*"),
// per-seller pricing counters ("node.<id>.*"), fault-tolerance counters and
// breaker gauges ("fault.*", present once EnableFaultTolerance is on), and
// the per-link network traffic ("net.<from>-><to>"). With a chaos plan
// installed the injected-fault tallies follow as "net.chaos.*" lines.
// Counters accumulate for the lifetime of the federation; network lines
// reset with ResetNetworkStats, chaos lines with SetFaultPlan.
func (f *Federation) MetricsSnapshot() string {
	var b strings.Builder
	b.WriteString(f.metrics.Snapshot())
	for _, t := range f.NetworkStatsByPeer() {
		fmt.Fprintf(&b, "%-46s messages=%d bytes=%d\n",
			"net."+t.From+"->"+t.To, t.Messages, t.Bytes)
	}
	if f.net.FaultPlanActive() {
		s := f.ChaosStats()
		fmt.Fprintf(&b, "%-46s %d\n", "net.chaos.crashes", s.Crashes)
		fmt.Fprintf(&b, "%-46s %d\n", "net.chaos.drops", s.Drops)
		fmt.Fprintf(&b, "%-46s %d\n", "net.chaos.flap_rejects", s.FlapRejects)
		fmt.Fprintf(&b, "%-46s %d\n", "net.chaos.injected_errors", s.InjectedErrors)
		fmt.Fprintf(&b, "%-46s %d\n", "net.chaos.slow_calls", s.SlowCalls)
	}
	return b.String()
}

// PeerTraffic is the traffic recorded on one directed sender→receiver link.
type PeerTraffic struct {
	From     string
	To       string
	Messages int64
	Bytes    int64
}

// NetworkStatsByPeer returns the per-link traffic breakdown since the last
// ResetNetworkStats, sorted by sender then receiver. Requests are charged
// to the sender→receiver link and responses to the reverse link.
func (f *Federation) NetworkStatsByPeer() []PeerTraffic {
	pairs := f.net.StatsByPair()
	out := make([]PeerTraffic, 0, len(pairs))
	for p, s := range pairs {
		out = append(out, PeerTraffic{From: p.From, To: p.To, Messages: s.Messages, Bytes: s.Bytes})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// setNodeTracer points every node's seller-side instrumentation at tr (nil
// detaches). Traced optimizations attach on entry and detach on return;
// concurrent traced optimizations therefore interleave their seller spans
// into whichever tracer attached last — run them sequentially when exact
// attribution matters.
func (f *Federation) setNodeTracer(tr *obs.Tracer) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, n := range f.nodes {
		n.inner.SetObs(tr, f.metrics)
	}
}
