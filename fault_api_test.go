package qtrade

import (
	"strings"
	"testing"
	"time"
)

// TestPublicAPIFaultTolerance drives the chaos + fault-tolerance surface end
// to end: a federation with a seeded drop plan and a shared fault policy
// keeps answering correctly, and the snapshot exposes both the policy
// counters and the injected-fault tallies.
func TestPublicAPIFaultTolerance(t *testing.T) {
	fed := buildFed(t)
	fed.EnableFaultTolerance(FaultTolerance{
		CallTimeout:  500 * time.Millisecond,
		RoundTimeout: time.Second,
		MaxRetries:   3,
		Backoff:      time.Millisecond,
	})
	fed.SetFaultPlan(&FaultPlan{Seed: 3, DropProb: 0.2})

	// Under 20% drops a query can still die (every retry of a critical call
	// lost); reissue like a client would and require the answers that do
	// come back to be right.
	ok := 0
	for i := 0; i < 5 && ok < 3; i++ {
		res, err := fed.QueryWithRecovery("hq", totalsQuery, 2)
		if err != nil {
			continue
		}
		if len(res.Rows) != 2 || res.Rows[0][1].(float64) != 22 || res.Rows[1][1].(float64) != 22 {
			t.Fatalf("wrong answer under chaos: %v", res.Rows)
		}
		ok++
	}
	if ok == 0 {
		t.Fatal("no query survived a 20% drop rate with retries enabled")
	}
	if s := fed.ChaosStats(); s.Drops == 0 {
		t.Fatalf("chaos stats show no drops: %+v", s)
	}
	snap := fed.MetricsSnapshot()
	for _, line := range []string{"net.chaos.drops", "fault.retries"} {
		if !strings.Contains(snap, line) {
			t.Fatalf("snapshot missing %q:\n%s", line, snap)
		}
	}

	fed.SetFaultPlan(nil)
	if s := fed.ChaosStats(); s != (ChaosStats{}) {
		t.Fatalf("chaos stats survive plan removal: %+v", s)
	}
	if strings.Contains(fed.MetricsSnapshot(), "net.chaos.") {
		t.Fatal("snapshot keeps chaos lines after plan removal")
	}
}

// TestPublicAPIEmptyFaultPlanByteIdentical pins the tentpole's safety
// guarantee at the public surface: installing an all-zero FaultPlan changes
// nothing — same plan, same purchases and prices, same message and byte
// counts as a federation with no plan at all.
func TestPublicAPIEmptyFaultPlanByteIdentical(t *testing.T) {
	run := func(install bool) (string, []Purchase, int64) {
		fed := buildFed(t)
		if install {
			fed.SetFaultPlan(&FaultPlan{Seed: 99})
		}
		p, err := fed.Optimize("hq", totalsQuery)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(); err != nil {
			t.Fatal(err)
		}
		// Message counts are deterministic; byte totals vary run to run even
		// without chaos (offer-id digit widths depend on the concurrent
		// sequence-number assignment order), so they are not compared.
		msgs, _ := fed.NetworkStats()
		return p.Explain(), p.Purchases(), msgs
	}
	plainExplain, plainBuys, plainMsgs := run(false)
	chaosExplain, chaosBuys, chaosMsgs := run(true)
	if plainExplain != chaosExplain {
		t.Fatalf("plan differs under empty plan:\n%s\nvs\n%s", plainExplain, chaosExplain)
	}
	if len(plainBuys) != len(chaosBuys) {
		t.Fatalf("purchases differ: %v vs %v", plainBuys, chaosBuys)
	}
	for i := range plainBuys {
		if plainBuys[i] != chaosBuys[i] {
			t.Fatalf("purchase %d differs: %+v vs %+v", i, plainBuys[i], chaosBuys[i])
		}
	}
	if plainMsgs != chaosMsgs {
		t.Fatalf("message counts differ: %d vs %d", plainMsgs, chaosMsgs)
	}
}
