package qtrade

import (
	"time"

	"qtrade/internal/netsim"
	"qtrade/internal/trading"
)

// Link names one directed sender→receiver network link.
type Link struct {
	From string
	To   string
}

// FaultPlan describes the chaos to inject into the simulated network. Every
// decision is derived deterministically from Seed and the per-node call
// sequence, so a fixed plan over a fixed workload replays the same faults.
// The zero plan injects nothing; an installed zero plan leaves message and
// byte accounting byte-identical to a fault-free federation.
type FaultPlan struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// DropProb is the probability a request is lost in transit on any link.
	// Lost requests are charged as one message and surface to the caller as
	// a transient (retryable) error.
	DropProb float64
	// LinkDropProb overrides DropProb for specific directed links.
	LinkDropProb map[Link]float64
	// ErrorProb is the probability a delivered request is answered with an
	// error reply instead of a result (transient).
	ErrorProb float64
	// JitterMS adds a uniform [0, JitterMS) wall-clock delay to every
	// delivered call.
	JitterMS float64
	// SlowNodeMS adds a fixed wall-clock delay to every call to the named
	// node — a permanently slow (straggling) seller.
	SlowNodeMS map[string]float64
	// FlapPeriod makes the named node intermittently unreachable: calls are
	// rejected while floor(seq/period) is odd, where seq counts the calls
	// addressed to that node.
	FlapPeriod map[string]int
	// CrashAfterAward permanently crashes the named node right after it
	// accepts its next Award — the seller dies between winning the
	// negotiation and delivering.
	CrashAfterAward map[string]bool
}

// SetFaultPlan installs (or, with nil, removes) a chaos plan on the
// federation's network. Fault tallies restart from zero on every install;
// read them with ChaosStats or see them as "net.chaos.*" lines in
// MetricsSnapshot.
func (f *Federation) SetFaultPlan(p *FaultPlan) {
	if p == nil {
		f.net.SetFaultPlan(nil)
		return
	}
	np := &netsim.FaultPlan{
		Seed:            p.Seed,
		DropProb:        p.DropProb,
		ErrorProb:       p.ErrorProb,
		JitterMS:        p.JitterMS,
		SlowNodeMS:      p.SlowNodeMS,
		FlapPeriod:      p.FlapPeriod,
		CrashAfterAward: p.CrashAfterAward,
	}
	if len(p.LinkDropProb) > 0 {
		np.LinkDropProb = make(map[netsim.Pair]float64, len(p.LinkDropProb))
		for l, prob := range p.LinkDropProb {
			np.LinkDropProb[netsim.Pair{From: l.From, To: l.To}] = prob
		}
	}
	f.net.SetFaultPlan(np)
}

// ChaosStats counts the faults the installed plan has injected.
type ChaosStats struct {
	Drops          int64 // requests lost in transit
	InjectedErrors int64 // error replies
	SlowCalls      int64 // calls delayed by SlowNodeMS or jitter
	FlapRejects    int64 // calls rejected by a flapping node
	Crashes        int64 // crash-after-award transitions
}

// ChaosStats returns the fault tallies since the current plan was installed
// (all zero when no plan is active).
func (f *Federation) ChaosStats() ChaosStats {
	s := f.net.ChaosStats()
	return ChaosStats{
		Drops:          s.Drops,
		InjectedErrors: s.InjectedErrors,
		SlowCalls:      s.SlowCalls,
		FlapRejects:    s.FlapRejects,
		Crashes:        s.Crashes,
	}
}

// FaultTolerance configures how the federation's buyers and subcontracting
// sellers defend against slow, flaky or dead peers.
type FaultTolerance struct {
	// CallTimeout bounds one peer call (0 = no timeout).
	CallTimeout time.Duration
	// RoundTimeout bounds one negotiation round's bid fan-out; peers that
	// have not answered by then are cut off as stragglers and the round
	// proceeds with the offers that arrived (0 = wait for all).
	RoundTimeout time.Duration
	// MaxRetries is how many times a transient failure (dropped message,
	// timeout, flapping node) is retried with exponential backoff (0 = no
	// retries).
	MaxRetries int
	// Backoff is the first retry's delay, doubling per retry (0 = 2ms).
	Backoff time.Duration
	// BreakerThreshold is the number of consecutive failures that opens a
	// peer's circuit breaker (0 = 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects calls before
	// half-open probes are allowed (0 = 500ms).
	BreakerCooldown time.Duration
}

// EnableFaultTolerance installs one shared fault policy across the
// federation: every buyer-side negotiation call and every seller-side
// subcontract call runs under the configured timeout, bounded retries, and a
// per-peer circuit breaker. The breakers are shared, so failures seen
// anywhere open the peer's one breaker. Policy counters ("fault.*") and
// per-peer breaker state gauges ("fault.breaker.<peer>") appear in
// MetricsSnapshot. It also unlocks graceful degradation in
// QueryWithRecovery: a delivery failure first falls back to an equivalent
// standing offer before paying for a re-optimization.
//
// Call it during setup, after adding nodes and before issuing queries. A
// zero FaultTolerance installs breakers with default settings but no
// timeouts; to remove the policy, create a new federation.
func (f *Federation) EnableFaultTolerance(ft FaultTolerance) {
	pol := &trading.FaultPolicy{
		CallTimeout:  ft.CallTimeout,
		RoundTimeout: ft.RoundTimeout,
		MaxRetries:   ft.MaxRetries,
		Backoff:      ft.Backoff,
		Breakers: trading.NewBreakerSet(trading.BreakerConfig{
			Threshold: ft.BreakerThreshold,
			Cooldown:  ft.BreakerCooldown,
		}, f.metrics),
		Metrics: f.metrics,
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = pol
	// The peer directory folds circuit state into its health gate, so a
	// peer with an open breaker is skipped as early as a draining one.
	f.dir.Breakers = pol.Breakers
	for _, n := range f.nodes {
		n.inner.SetFaultPolicy(pol)
	}
}
