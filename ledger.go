package qtrade

// Public surface for the trading ledger: an opt-in, bounded audit log of
// every negotiation the federation runs (RFBs, bids, awards, measured
// execution) plus the calibration layer that compares each seller's quoted
// costs against what the buyer actually measured. Enable it at federation
// creation with WithLedger; when absent the trading hot path pays nothing.

import (
	"io"

	"qtrade/internal/ledger"
)

// FederationOption configures a Federation at creation time.
type FederationOption func(*Federation)

// WithLedger attaches a trading ledger retaining the last capacity
// negotiations (ledger.DefaultCapacity when capacity <= 0). Every node added
// afterwards records its pricing and execution events into the same ledger,
// and every Optimize/Query call opens a negotiation record. Without this
// option the ledger is nil and adds zero allocations to the trading path.
func WithLedger(capacity int) FederationOption {
	return func(f *Federation) {
		f.ledger = ledger.New(capacity)
	}
}

// Ledger returns the federation's trading ledger, or nil when the federation
// was created without WithLedger. The returned value is an http.Handler
// serving the retained negotiations as JSONL, so it can be mounted directly
// on an exposition mux.
func (f *Federation) Ledger() *ledger.Ledger { return f.ledger }

// CalibrationReport aggregates the ledger's economic telemetry: per-seller
// quoted-vs-measured cost ratios, win rates and EWMA quote error, plus the
// per-phase latency breakdown of the trading pipeline. Returns a zero Report
// when the federation has no ledger.
func (f *Federation) CalibrationReport() ledger.Report {
	if f.ledger == nil {
		return ledger.Report{}
	}
	return f.ledger.Calibration()
}

// WriteLedgerJSONL writes the most recent n retained negotiations (all when
// n <= 0) to w, one JSON object per line, oldest first. No-op without a
// ledger.
func (f *Federation) WriteLedgerJSONL(w io.Writer, n int) error {
	if f.ledger == nil {
		return nil
	}
	return f.ledger.WriteJSONL(w, n)
}
