// Views: the seller predicates analyser (§3.5) in action. A node that keeps
// a materialized per-customer totals view offers it at a fraction of the
// cost of recomputing the join, and the buyer's plan generator picks it —
// the paper's data-warehouse/OLAP motivation for view-based offers.
// Run with: go run ./examples/views
package main

import (
	"fmt"
	"log"
	"strings"

	"qtrade"
	"qtrade/internal/value"
)

func main() {
	sch := qtrade.NewSchema()
	sch.MustTable("customer",
		qtrade.Col("custid", qtrade.Int),
		qtrade.Col("office", qtrade.Str))
	sch.MustTable("invoiceline",
		qtrade.Col("invid", qtrade.Int),
		qtrade.Col("custid", qtrade.Int),
		qtrade.Col("charge", qtrade.Float))

	fed := qtrade.NewFederation(sch)
	warehouse := fed.MustAddNode("warehouse")
	warehouse.MustCreateFragment("customer", "p0")
	warehouse.MustCreateFragment("invoiceline", "p0")

	offices := []string{"Corfu", "Myconos", "Athens"}
	type key struct {
		office string
		cust   int64
	}
	totals := map[key]float64{}
	invid := int64(0)
	for c := int64(1); c <= 500; c++ {
		office := offices[int(c)%len(offices)]
		warehouse.MustInsert("customer", "p0", qtrade.Row(c, office))
		for l := int64(0); l < 4; l++ {
			invid++
			charge := float64((c*13+l*7)%200) + 1
			warehouse.MustInsert("invoiceline", "p0", qtrade.Row(invid, c, charge))
			totals[key{office, c}] += charge
		}
	}

	// The warehouse maintains a per-(office, customer) totals view — finer
	// grained than the analyst's query, so the matcher must roll it up.
	viewDef := `SELECT c.office, c.custid, SUM(i.charge) AS total
		FROM customer c, invoiceline i WHERE c.custid = i.custid
		GROUP BY c.office, c.custid`
	viewCols := []qtrade.Column{
		qtrade.Col("office", qtrade.Str),
		qtrade.Col("custid", qtrade.Int),
		qtrade.Col("total", qtrade.Float),
	}
	var viewRows [][]value.Value
	for k, total := range totals {
		viewRows = append(viewRows, qtrade.Row(k.office, k.cust, total))
	}
	if err := warehouse.AddView("officetotals", viewDef, viewCols, viewRows...); err != nil {
		log.Fatal(err)
	}
	fed.MustAddNode("analyst")

	query := `SELECT c.office, SUM(i.charge) AS total
		FROM customer c, invoiceline i
		WHERE c.custid = i.custid GROUP BY c.office ORDER BY c.office`

	fmt.Println("== trading with the materialized view on offer ==")
	plan, err := fed.Optimize("analyst", query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Explain())
	usedView := false
	for _, p := range plan.Purchases() {
		if strings.Contains(p.SQL, "officetotals") {
			usedView = true
		}
	}
	fmt.Printf("view offer won: %v\n\n", usedView)

	res, err := plan.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.Join(res.Columns, " | "))
	for _, r := range res.Rows {
		fmt.Println(r)
	}
}
