// Quickstart: a three-node federation answering the paper's motivating
// query. Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"qtrade"
)

func main() {
	// 1. The public logical schema: customer is horizontally partitioned by
	// office; invoiceline is a single (replicatable) fragment.
	sch := qtrade.NewSchema()
	sch.MustTable("customer",
		qtrade.Col("custid", qtrade.Int),
		qtrade.Col("custname", qtrade.Str),
		qtrade.Col("office", qtrade.Str))
	sch.MustTable("invoiceline",
		qtrade.Col("invid", qtrade.Int),
		qtrade.Col("linenum", qtrade.Int),
		qtrade.Col("custid", qtrade.Int),
		qtrade.Col("charge", qtrade.Float))
	sch.MustPartition("customer",
		qtrade.Part("corfu", "office = 'Corfu'"),
		qtrade.Part("myconos", "office = 'Myconos'"))

	// 2. Autonomous nodes: each island office holds its own customers plus
	// an invoice replica. Nobody shares statistics or placement — only the
	// schema is public.
	fed := qtrade.NewFederation(sch)
	load := func(id string, customers [][]any) {
		n := fed.MustAddNode(id)
		n.MustCreateFragment("customer", id)
		for _, c := range customers {
			n.MustInsert("customer", id, qtrade.Row(c...))
		}
		n.MustCreateFragment("invoiceline", "p0")
		lines := [][]any{
			{100, 1, 1, 10.0}, {100, 2, 1, 5.0}, {101, 1, 2, 7.0},
			{102, 1, 3, 20.0}, {103, 1, 4, 2.0},
		}
		for _, l := range lines {
			n.MustInsert("invoiceline", "p0", qtrade.Row(l...))
		}
	}
	load("corfu", [][]any{{1, "alice", "Corfu"}, {2, "bob", "Corfu"}})
	load("myconos", [][]any{{3, "carol", "Myconos"}, {4, "dave", "Myconos"}})
	fed.MustAddNode("hq") // the buyer: a manager's node with no data

	// 3. Optimize by trading: hq requests bids, the islands offer priced
	// partial answers, the cheapest combination wins.
	plan, err := fed.Optimize("hq", `
		SELECT c.office, SUM(i.charge) AS total
		FROM customer c, invoiceline i
		WHERE c.custid = i.custid AND c.office IN ('Corfu', 'Myconos')
		GROUP BY c.office ORDER BY c.office`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distributed plan bought through trading:")
	fmt.Print(plan.Explain())
	for _, p := range plan.Purchases() {
		fmt.Printf("  bought from %-8s for %6.2f: %s\n", p.Seller, p.Price, p.SQL)
	}

	// 4. Execute: only now does data move.
	res, err := plan.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nanswer:")
	fmt.Println(res.Columns)
	for _, r := range res.Rows {
		fmt.Println(r)
	}
	msgs, bytes := fed.NetworkStats()
	fmt.Printf("\nnetwork: %d messages, %d bytes\n", msgs, bytes)
}
