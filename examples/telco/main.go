// Telco: the paper's full motivating scenario at a larger scale — a
// telecommunications company with regional offices, horizontally partitioned
// and replicated customer-care data, and managers issuing analytical queries
// from any office. Demonstrates partition pruning, fragment reassembly
// across sellers, protocol choice, and robustness to a node failure.
// Run with: go run ./examples/telco
package main

import (
	"fmt"
	"log"
	"strings"

	"qtrade"
)

var offices = []string{"Corfu", "Myconos", "Athens", "Rhodes", "Chania"}

func main() {
	sch := qtrade.NewSchema()
	sch.MustTable("customer",
		qtrade.Col("custid", qtrade.Int),
		qtrade.Col("custname", qtrade.Str),
		qtrade.Col("office", qtrade.Str))
	sch.MustTable("invoiceline",
		qtrade.Col("invid", qtrade.Int),
		qtrade.Col("linenum", qtrade.Int),
		qtrade.Col("custid", qtrade.Int),
		qtrade.Col("charge", qtrade.Float))
	parts := make([]qtrade.Partition, len(offices))
	for i, off := range offices {
		parts[i] = qtrade.Part(strings.ToLower(off), fmt.Sprintf("office = '%s'", off))
	}
	sch.MustPartition("customer", parts...)

	fed := qtrade.NewFederation(sch)
	id := 0
	invid := 10000
	for oi, off := range offices {
		n := fed.MustAddNode(strings.ToLower(off))
		part := strings.ToLower(off)
		n.MustCreateFragment("customer", part)
		// Invoice replicas on island offices only (odd indexes skip them).
		withInvoices := oi%2 == 0
		if withInvoices {
			n.MustCreateFragment("invoiceline", "p0")
		}
		for c := 0; c < 200; c++ {
			id++
			n.MustInsert("customer", part, qtrade.Row(id, fmt.Sprintf("cust%d", id), off))
		}
	}
	// Load all invoice lines on every replica holder.
	for oi, off := range offices {
		if oi%2 != 0 {
			continue
		}
		n := fed.Node(strings.ToLower(off))
		for cust := 1; cust <= id; cust++ {
			for l := 0; l < 2; l++ {
				invid++
				n.MustInsert("invoiceline", "p0",
					qtrade.Row(invid, l+1, cust, float64((cust*7+l*3)%90)+1))
			}
		}
	}
	fed.MustAddNode("hq")

	query := `SELECT c.office, SUM(i.charge) AS total, COUNT(*) AS lines
		FROM customer c, invoiceline i
		WHERE c.custid = i.custid AND c.office IN ('Corfu', 'Myconos')
		GROUP BY c.office ORDER BY total DESC`

	fmt.Println("== the manager's query, optimized by query trading ==")
	plan, err := fed.Optimize("hq", query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Explain())
	fmt.Printf("(%d trading iterations)\n\n", plan.Iterations())

	res, err := plan.Run()
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)

	fmt.Println("\n== same query via iterative bidding ==")
	res2, err := fed.Query("hq", query, qtrade.WithProtocol("iterative"))
	if err != nil {
		log.Fatal(err)
	}
	printResult(res2)

	fmt.Println("\n== corfu node fails; query restricted to Myconos still works ==")
	fed.SetNodeDown("corfu", true)
	res3, err := fed.Query("hq", `
		SELECT c.office, SUM(i.charge) AS total
		FROM customer c, invoiceline i
		WHERE c.custid = i.custid AND c.office = 'Myconos'
		GROUP BY c.office`)
	if err != nil {
		log.Fatal(err)
	}
	printResult(res3)
}

func printResult(res *qtrade.Result) {
	fmt.Println(strings.Join(res.Columns, " | "))
	for _, r := range res.Rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = fmt.Sprint(v)
		}
		fmt.Println(strings.Join(cells, " | "))
	}
}
