// Marketplace: a competitive federation of independent data providers. Each
// seller prices answers with an adaptive profit margin; repeated
// negotiations show margins rising while a seller keeps winning and
// collapsing toward truthful cost under competition — the paper's
// competitive setting (internet nodes selling data products).
// Run with: go run ./examples/marketplace
package main

import (
	"fmt"
	"log"

	"qtrade"
)

func main() {
	sch := qtrade.NewSchema()
	sch.MustTable("listings",
		qtrade.Col("id", qtrade.Int),
		qtrade.Col("region", qtrade.Str),
		qtrade.Col("price", qtrade.Float))
	sch.MustPartition("listings",
		qtrade.Part("north", "region = 'north'"),
		qtrade.Part("south", "region = 'south'"))

	fed := qtrade.NewFederation(sch)
	// Three providers: two compete head-to-head on the north partition (one
	// replica each); the south partition has a monopolist.
	providers := []struct {
		id    string
		parts []string
	}{
		{"alpha", []string{"north"}},
		{"beta", []string{"north"}},
		{"gamma", []string{"south"}},
	}
	for _, p := range providers {
		n := fed.MustAddNode(p.id, qtrade.WithStrategy(qtrade.Competitive))
		for _, part := range p.parts {
			n.MustCreateFragment("listings", part)
			for i := 0; i < 300; i++ {
				n.MustInsert("listings", part,
					qtrade.Row(i, part, float64(i%500)+10))
			}
		}
	}
	fed.MustAddNode("broker")

	queries := map[string]string{
		"competitive (north, two sellers)": "SELECT l.id, l.price FROM listings l WHERE l.region = 'north' AND l.price > 400",
		"monopoly (south, one seller)":     "SELECT l.id, l.price FROM listings l WHERE l.region = 'south' AND l.price > 400",
	}

	for label, q := range queries {
		fmt.Printf("== %s ==\n", label)
		fmt.Println("round  winner  paid")
		for round := 1; round <= 8; round++ {
			plan, err := fed.Optimize("broker", q, qtrade.WithProtocol("iterative"))
			if err != nil {
				log.Fatal(err)
			}
			var paid float64
			winner := ""
			for _, b := range plan.Purchases() {
				paid += b.Price
				winner = b.Seller
			}
			fmt.Printf("%5d  %-6s  %6.3f\n", round, winner, paid)
		}
		fmt.Println()
	}
	fmt.Println("competition drives the paid value toward truthful cost;")
	fmt.Println("the monopolist's margin only grows while it keeps winning.")
}
